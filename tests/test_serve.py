"""Tests for the ``repro serve`` front end.

The request-dedup logic is tested directly on :class:`RequestBroker`
with a controllable fake session (no sockets, no simulator), then the
HTTP surface is exercised end to end against a real server on an
ephemeral port with the real simulator underneath.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments import Experiment, Session
from repro.store import MemoryStore, RequestBroker, ReproServer, StoreKey
from repro.utils.errors import ExperimentError, ReproError

CHEAP_SPEC = {"kind": "dynamic", "configs": ["gf100"],
              "workload": "vecadd", "params": {"n": 96, "buckets": 4}}


class BlockingSession:
    """Session stand-in whose run() blocks until released.

    Exposes just what the broker touches: ``store``, ``store_key``,
    ``counters`` and ``run``.  Every run waits on ``gate``, so a test can
    pile concurrent requests onto one in-flight simulation and observe
    the dedup behaviour deterministically.
    """

    def __init__(self):
        self.store = None
        self.gate = threading.Event()
        self.started = threading.Event()
        self.runs = 0
        self._lock = threading.Lock()

    def store_key(self, experiment):
        return StoreKey(experiment.spec_hash(), "c" * 16, "v" * 16)

    def counters(self):
        with self._lock:
            return {"cache_hits": 0, "cache_misses": self.runs,
                    "store_hits": 0, "store_misses": 0,
                    "simulated": self.runs}

    def run(self, experiment):
        self.started.set()
        assert self.gate.wait(timeout=30)
        with self._lock:
            self.runs += 1

        class FakeRecord:
            @staticmethod
            def to_dict():
                return {"kind": experiment.kind, "runs": None}

        return FakeRecord()


class TestRequestBroker:
    def test_concurrent_same_key_requests_collapse(self):
        session = BlockingSession()
        broker = RequestBroker(session)
        results = []

        def request():
            results.append(broker.run(CHEAP_SPEC))

        threads = [threading.Thread(target=request) for _ in range(3)]
        threads[0].start()
        assert session.started.wait(timeout=30)
        for thread in threads[1:]:
            thread.start()
        # The two waiters are parked on the in-flight entry; release the
        # owner and everyone resolves off the single simulation.
        import time
        deadline = time.time() + 30
        while broker.counters["requests"] < 3 and time.time() < deadline:
            time.sleep(0.01)
        assert broker.counters["requests"] == 3
        session.gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert session.runs == 1
        sources = sorted(source for _record, source, _key in results)
        assert sources == ["in-flight", "in-flight", "simulated"]
        assert broker.counters["simulated"] == 1
        assert broker.counters["in-flight"] == 2
        assert broker._inflight == {}

    def test_source_derived_from_counters(self):
        session = Session(store=MemoryStore())
        broker = RequestBroker(session)
        _record, source, key = broker.run(CHEAP_SPEC)
        assert source == "simulated"
        assert key["spec_hash"] == \
            Experiment.from_dict(CHEAP_SPEC).spec_hash()
        _record, source, _key = broker.run(CHEAP_SPEC)
        assert source == "cache"
        _record, source, _key = broker.run(
            {"experiment": CHEAP_SPEC})       # wrapped form
        assert source == "cache"
        fresh = Session(store=session.store)
        _record, source, _key = RequestBroker(fresh).run(CHEAP_SPEC)
        assert source == "store"

    def test_invalid_spec_raises_repro_error(self):
        broker = RequestBroker(Session())
        with pytest.raises(ReproError):
            broker.run({"kind": "bogus"})
        with pytest.raises(ReproError):
            broker.run({"experiment": "not a mapping"})

    def test_failure_propagates_and_entry_retires(self):
        broker = RequestBroker(Session())
        bad = {"kind": "dynamic", "configs": ["no_such_config"],
               "workload": "vecadd", "params": {"n": 96}}
        # An unknown config fails during key resolution: a client error
        # (HTTP 400), not a counted simulation failure.
        with pytest.raises(ReproError):
            broker.run(bad)
        assert broker.counters["errors"] == 0
        assert broker._inflight == {}

    def test_stats_shape(self):
        broker = RequestBroker(Session(store=MemoryStore()))
        stats = broker.stats()
        assert set(stats) == {"serve", "session", "store"}
        assert stats["store"]["entries"] == 0
        json.dumps(stats)


@pytest.fixture
def server():
    instance = ReproServer(("127.0.0.1", 0),
                           Session(store=MemoryStore()), quiet=True)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=10)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post(server, payload):
    data = (payload if isinstance(payload, bytes)
            else json.dumps(payload).encode("utf-8"))
    request = urllib.request.Request(
        _url(server, "/run"), data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return json.load(response)


class TestHTTP:
    def test_run_then_cache_hit(self, server):
        first = _post(server, CHEAP_SPEC)
        assert first["source"] == "simulated"
        assert first["record"]["kind"] == "dynamic"
        assert first["record"]["total_cycles"] > 0
        second = _post(server, CHEAP_SPEC)
        assert second["source"] == "cache"
        assert second["record"] == first["record"]
        assert second["key"] == first["key"]

    def test_store_shared_across_server_restart(self, server):
        _post(server, CHEAP_SPEC)
        store = server.broker.session.store
        reborn = ReproServer(("127.0.0.1", 0), Session(store=store),
                             quiet=True)
        thread = threading.Thread(target=reborn.serve_forever, daemon=True)
        thread.start()
        try:
            assert _post(reborn, CHEAP_SPEC)["source"] == "store"
        finally:
            reborn.shutdown()
            reborn.server_close()
            thread.join(timeout=10)

    def test_bad_spec_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, {"kind": "bogus"})
        assert excinfo.value.code == 400
        assert "bogus" in json.load(excinfo.value)["error"]

    def test_invalid_json_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, b"{not json")
        assert excinfo.value.code == 400

    def test_empty_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, b"")
        assert excinfo.value.code == 400

    def test_unknown_paths_are_404(self, server):
        for path in ("/nope", "/run/extra"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(_url(server, path))
            assert excinfo.value.code == 404

    def test_stats_and_healthz(self, server):
        _post(server, CHEAP_SPEC)
        with urllib.request.urlopen(_url(server, "/stats")) as response:
            stats = json.load(response)
        assert stats["serve"]["requests"] == 1
        assert stats["serve"]["simulated"] == 1
        assert stats["session"]["simulated"] == 1
        assert stats["store"]["entries"] == 1
        with urllib.request.urlopen(_url(server, "/healthz")) as response:
            assert json.load(response) == {"ok": True}


class TestServeCLI:
    def test_serve_subcommand_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--store", "s.sqlite", "--port", "0"])
        assert args.command == "serve"
        assert args.store == "s.sqlite"
        assert args.port == 0
        assert args.host == "127.0.0.1"

    def test_serve_requires_store(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
