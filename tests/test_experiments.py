"""Tests for the unified experiment layer (registries, specs, session)."""

import json

import pytest

from repro.experiments import (
    Experiment,
    RunRecord,
    RunSet,
    Session,
    parse_param_token,
    parse_param_tokens,
    workload_param_spec,
)
from repro.gpu import (
    available_configs,
    get_config,
    register_config,
    unregister_config,
)
from repro.utils.errors import (
    ConfigurationError,
    ExperimentError,
    RegistryError,
)
from repro.utils.registry import Registry
from repro.workloads import (
    available_workloads,
    create_workload,
    register_workload,
    unregister_workload,
    workload_description,
)
from repro.workloads.base import LaunchSpec, Workload
from repro.workloads.vecadd import build_vecadd_kernel


class EchoWorkload(Workload):
    # Intentionally no docstring: the registry must fall back to the
    # class name instead of crashing (the old CLI bug).

    name = "echo_test"

    def __init__(self, n: int = 64, block_dim: int = 32) -> None:
        super().__init__()
        self.n = n
        self.block_dim = block_dim

    def build_program(self):
        return build_vecadd_kernel()

    def prepare(self, gpu) -> LaunchSpec:
        a = gpu.allocate(4 * self.n, name="echo.a")
        b = gpu.allocate(4 * self.n, name="echo.b")
        c = gpu.allocate(4 * self.n, name="echo.c")
        return LaunchSpec(grid_dim=-(-self.n // self.block_dim),
                          block_dim=self.block_dim,
                          params={"n": self.n, "a": a, "b": b, "c": c})

    def verify(self, gpu) -> bool:
        return True


class TestRegistry:
    def test_register_get_unregister(self):
        registry = Registry("thing")
        registry.register(lambda: 1, name="one", description="the first")
        assert "one" in registry
        assert registry.describe("one") == "the first"
        assert registry.get("one")() == 1
        registry.unregister("one")
        assert "one" not in registry

    def test_collision_raises(self):
        registry = Registry("thing")
        registry.register(lambda: 1, name="one")
        with pytest.raises(RegistryError):
            registry.register(lambda: 2, name="one")
        registry.register(lambda: 2, name="one", overwrite=True)
        assert registry.get("one")() == 2

    def test_unknown_lookup_lists_names(self):
        registry = Registry("thing")
        registry.register(lambda: 1, name="one")
        with pytest.raises(RegistryError, match="one"):
            registry.get("two")
        with pytest.raises(RegistryError):
            registry.unregister("two")

    def test_decorator_styles(self):
        registry = Registry("thing")

        @registry.register
        class Named:
            """A documented thing."""
            name = "named"

        @registry.register(name="other", description="override")
        class Other:
            pass

        assert registry.get("named") is Named
        assert registry.describe("named") == "A documented thing."
        assert registry.describe("other") == "override"

    def test_undocumented_class_gets_name_fallback(self):
        registry = Registry("thing")

        class Bare:
            pass

        registry.register(Bare, name="bare")
        assert registry.describe("bare") == "Bare"


class TestWorkloadRegistry:
    def test_builtins_registered_with_descriptions(self):
        assert "bfs" in available_workloads()
        assert "BFS" in workload_description("bfs")

    def test_register_unregister_roundtrip(self):
        register_workload(EchoWorkload)
        try:
            assert "echo_test" in available_workloads()
            # Docstring-less class: description falls back to class name.
            assert workload_description("echo_test") == "EchoWorkload"
            workload = create_workload("echo_test", n=32)
            assert workload.n == 32
            with pytest.raises(RegistryError):
                register_workload(EchoWorkload)
        finally:
            unregister_workload("echo_test")
        assert "echo_test" not in available_workloads()

    def test_unknown_workload_raises_keyerror_compatible(self):
        with pytest.raises(KeyError):
            create_workload("raytracer")

    def test_workload_param_spec_reflects_signature(self):
        spec = workload_param_spec("vecadd")
        assert spec["n"] == (int, 4096)
        assert spec["block_dim"] == (int, 128)


class TestConfigRegistry:
    def test_builtins_present(self):
        assert set(available_configs()) >= {"gt200", "gf106", "gf100",
                                            "gk104", "gm107"}

    def test_register_config_instance_and_factory(self, fast_config):
        register_config(fast_config, name="fast_test")
        try:
            assert get_config("fast_test").num_sms == fast_config.num_sms
            with pytest.raises(RegistryError):
                register_config(fast_config, name="fast_test")
        finally:
            unregister_config("fast_test")
        with pytest.raises(ConfigurationError):
            get_config("fast_test")


class TestExperimentSpec:
    def test_kind_validation(self):
        with pytest.raises(ExperimentError):
            Experiment(kind="quantum")
        with pytest.raises(ExperimentError):
            Experiment(kind="dynamic", configs=("gf100",))  # no workload
        with pytest.raises(ExperimentError):
            Experiment(kind="sweep", configs=("a", "b"))
        with pytest.raises(ExperimentError):
            Experiment(kind="static", workload="bfs")

    def test_unknown_kind_param_rejected(self):
        with pytest.raises(ExperimentError, match="accesses"):
            Experiment.sweep("gf106", bogus=1)

    def test_kind_params_stored_coerced(self):
        # String values (e.g. from hand-written JSON specs) and scalar
        # footprints must be normalized at construction so the runners
        # never see raw uncoerced values.
        experiment = Experiment.sweep("gt200", accesses="48",
                                      footprints=4096)
        assert experiment.params["accesses"] == 48
        assert experiment.params["footprints"] == [4096]
        with pytest.raises(ExperimentError):
            Experiment.sweep("gt200", accesses="lots")

    def test_json_roundtrip(self):
        experiment = Experiment.dynamic("gf100", "bfs", num_nodes=512,
                                        avg_degree=4, label="demo")
        text = experiment.to_json()
        rebuilt = Experiment.from_json(text)
        assert rebuilt == experiment
        assert rebuilt.to_json() == text

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError):
            Experiment.from_dict({"kind": "static", "banana": 1})

    def test_grid_expansion_counts(self):
        experiments = Experiment.grid(
            kind="dynamic",
            configs=["gf100", "gk104", "gm107"],
            workloads=["bfs", "vecadd"],
            params={"num_nodes": [256, 512], "avg_degree": 4},
        )
        # 3 configs x 2 workloads x 2 swept values = 12; the scalar
        # parameter is constant across all of them.
        assert len(experiments) == 12
        assert all(e.params["avg_degree"] == 4 for e in experiments)
        assert len({e.cache_key() for e in experiments}) == 12

    def test_grid_without_axes_is_product_of_configs_and_workloads(self):
        experiments = Experiment.grid(kind="dynamic", configs=["gf100"],
                                      workloads=["bfs", "vecadd"])
        assert len(experiments) == 2

    def test_grid_nested_list_holds_list_param_constant(self):
        experiments = Experiment.grid(
            kind="sweep", configs=["gf106", "gk104"],
            params={"footprints": [[4096, 65536]]})
        assert len(experiments) == 2
        assert all(e.params["footprints"] == [4096, 65536]
                   for e in experiments)

    def test_param_token_parsing(self):
        assert parse_param_token("n=2048") == ("n", 2048)
        assert parse_param_token("scale=0.5") == ("scale", 0.5)
        assert parse_param_token("verify=true") == ("verify", True)
        assert parse_param_token("space=global") == ("space", "global")
        assert parse_param_tokens(["a=1", "b=x"]) == {"a": 1, "b": "x"}
        with pytest.raises(ExperimentError):
            parse_param_token("broken")


class TestSession:
    def test_dynamic_run_produces_record(self):
        session = Session()
        record = session.run(Experiment.dynamic("gf100", "vecadd", n=128,
                                                buckets=8))
        assert record.kind == "dynamic"
        assert record.total_cycles > 0
        assert len(record.launches) == 1
        assert record.launches[0]["instructions"] > 0
        assert record.breakdown is not None
        assert record.exposure is not None
        assert record.gpu is not None
        assert record.tracker is record.gpu.tracker
        assert record.payload["breakdown"]["total_requests"] > 0

    def test_per_launch_stats_are_deltas(self):
        session = Session(cache=False)
        record = session.run(Experiment.dynamic(
            "gf100", "bfs", num_nodes=128, avg_degree=4, buckets=8))
        launches = record.launches
        assert len(launches) > 1
        issued_key = next(key for key in launches[0]["stats"]
                          if key.endswith("sm0.instructions_issued"))
        # Cumulative counters would grow monotonically across launches;
        # deltas must sum to the GPU's final cumulative counter instead.
        total = sum(launch["stats"][issued_key] for launch in launches)
        final = record.gpu.collect_stats().as_dict()
        final_key = next(key for key in final
                         if key.endswith("sm0.instructions_issued"))
        assert total == final[final_key]
        for launch in launches:
            assert launch["stats"]["gf100.cycles"] == launch["cycles"]

    def test_cache_hit_returns_cached_record(self):
        session = Session()
        spec = Experiment.dynamic("gf100", "vecadd", n=128, buckets=8)
        first = session.run(spec)
        second = session.run(Experiment.dynamic("gf100", "vecadd", n=128,
                                                buckets=8))
        assert session.cache_info() == {"hits": 1, "misses": 1, "size": 1}
        # The hit reuses the first run's results without re-simulating ...
        assert second.payload is first.payload
        assert second.breakdown is first.breakdown
        # ... but cached records drop the live simulator state, so a
        # session does not pin one full GPU per experiment.
        assert first.gpu is not None
        assert second.gpu is None
        assert session.run(spec) is second
        third = session.run(spec, use_cache=False)
        assert third is not second
        session.clear_cache()
        assert session.cache_info()["size"] == 0

    def test_cache_disabled(self):
        session = Session(cache=False)
        spec = Experiment.dynamic("gf100", "vecadd", n=128, buckets=8)
        assert session.run(spec) is not session.run(spec)
        assert session.cache_hits == 0

    def test_session_local_config_shadows_registry(self, fast_config):
        session = Session()
        name = session.add_config(fast_config, name="gf100")
        assert name == "gf100"
        record = session.run(Experiment.dynamic("gf100", "vecadd", n=128,
                                                buckets=8))
        assert record.gpu.config is fast_config
        # A fresh session without the override uses the registry preset.
        assert Session().resolve_config("gf100").num_sms == 4

    def test_local_configs_have_distinct_cache_keys(self, fast_config):
        plain = Session()
        shadowed = Session(configs={"gf100": fast_config})
        spec = Experiment.dynamic("gf100", "vecadd", n=64, buckets=4)
        assert plain._cache_key(spec) != shadowed._cache_key(spec)
        # A default static spec resolves the Table I generations, so
        # shadowing one of them must change the key as well.
        static = Experiment.static(accesses=48)
        assert plain._cache_key(static) == Session()._cache_key(static)
        assert (Session(configs={"gf106": fast_config})._cache_key(static)
                != plain._cache_key(static))

    def test_unknown_workload_param_is_experiment_error(self):
        session = Session()
        with pytest.raises(ExperimentError, match="valid parameters"):
            session.run(Experiment.dynamic("gf100", "vecadd", bogus=3))

    def test_string_params_coerced_to_signature_types(self):
        session = Session()
        record = session.run(Experiment.dynamic("gf100", "vecadd", n="128",
                                                buckets=4))
        assert record.workload.n == 128

    def test_sweep_run(self):
        session = Session()
        record = session.run(Experiment.sweep("gt200", accesses=48,
                                              footprints=[4096, 16384]))
        assert record.kind == "sweep"
        assert record.hierarchy.num_levels == 1
        assert len(record.payload["measurements"]) == 2

    def test_static_run_single_generation(self):
        session = Session()
        record = session.run(Experiment.static(configs=["gt200"],
                                               accesses=48))
        assert record.kind == "static"
        generation = record.payload["generations"][0]
        assert generation["config"] == "gt200"
        assert generation["measured"]["dram"] == pytest.approx(440, rel=0.2)
        assert record.table.row("gt200").paper["dram"] == 440

    def test_run_json_accepts_object_and_array(self):
        session = Session()
        single = session.run_json(json.dumps(
            {"kind": "dynamic", "configs": ["gf100"], "workload": "vecadd",
             "params": {"n": 128, "buckets": 4}}))
        assert len(single) == 1
        assert session.cache_info()["misses"] == 1


class TestRunSetSerialization:
    def _records(self):
        session = Session()
        return session.run_many([
            Experiment.dynamic("gf100", "vecadd", n=128, buckets=8),
            Experiment.sweep("gt200", accesses=48,
                             footprints=[4096, 16384]),
        ])

    def test_to_json_roundtrips_byte_identical(self):
        runs = self._records()
        text = runs.to_json()
        rebuilt = RunSet.from_json(text)
        assert rebuilt.to_json() == text
        # A second round trip is also stable.
        assert RunSet.from_json(rebuilt.to_json()).to_json() == text

    def test_rebuilt_records_have_no_artifacts(self):
        runs = self._records()
        rebuilt = RunSet.from_json(runs.to_json())
        assert rebuilt[0].gpu is None
        assert rebuilt[0].breakdown is None
        assert rebuilt[0].payload == runs[0].payload

    def test_save_and_load(self, tmp_path):
        runs = self._records()
        path = tmp_path / "runs.json"
        runs.save(path)
        loaded = RunSet.load(path)
        assert loaded.to_json() == runs.to_json()

    def test_filter(self):
        runs = self._records()
        assert len(runs.filter(kind="dynamic")) == 1
        assert len(runs.filter(kind="dynamic", workload="vecadd")) == 1
        assert len(runs.filter(kind="dynamic", workload="bfs")) == 0

    def test_record_json_roundtrip(self):
        record = self._records()[0]
        rebuilt = RunRecord.from_json(record.to_json())
        assert rebuilt.to_json() == record.to_json()
        assert rebuilt.total_cycles == record.total_cycles
        assert rebuilt.summary() == record.summary()
