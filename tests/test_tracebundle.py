"""Trace-bundle frontend tests: loader diagnostics, export round-trips,
and store-key stability.

Three properties pin the bundle format contract:

* a malformed bundle fails at load time with a :class:`BundleError`
  naming the offending *file* (and where possible the line/column), so
  bundle authors never need the loader's source to fix an artifact;
* ``export_workload`` captures a builder workload into files that load
  back into a byte-identical simulation (same cycles, instructions, and
  verified outputs) and survive the stream envelope unchanged;
* a bundle's store identity is its *content* fingerprint: the same
  bytes at a different path hash identically, different bytes do not.
"""

from __future__ import annotations

import io
import json
import sys

import pytest

from repro.cli import main
from repro.experiments import Experiment
from repro.gpu import GPU, get_config
from repro.utils.errors import BundleError
from repro.workloads import (
    available_workloads,
    bundle_workload_names,
    create_workload,
    export_workload,
    load_bundle,
    register_bundle,
    tracebundle,
    unregister_workload,
    workload_source,
)
from repro.workloads.base import Workload
from repro.workloads.tracebundle import (
    builtin_bundle_dir,
    load_bundle_files,
    read_bundle_stream,
    write_bundle_dir,
    write_bundle_stream,
)

#: SMOKE_PARAMS-sized capture parameters for the export round-trip; the
#: coverage test below keeps this in sync with the registry.
EXPORT_PARAMS = {
    "vecadd": {"n": 256, "block_dim": 64},
    "stencil": {"n": 256, "block_dim": 64},
    "matmul": {"n": 8, "block_dim": 64},
    "spmv": {"num_rows": 48, "nnz_per_row": 4},
    "pointer_chase": {"footprint_bytes": 2048, "stride_bytes": 128,
                      "n_accesses": 32},
    "microbench": {"ilp": 2, "mlp": 2, "arith_per_load": 2, "stride": 128,
                   "footprint": 4096, "ctas": 2, "warps_per_cta": 2,
                   "iters": 8},
    "microbench_mlp4": {"footprint": 8192, "ctas": 2, "iters": 8},
}

#: Builder workloads the exporter must *reject*: their ``run`` overrides
#: the single-launch default, so one captured launch cannot replay them.
MULTI_LAUNCH = ("bfs", "reduction")


def corpus_files(name="saxpy"):
    """A copy of a known-good corpus bundle's files to mutate."""
    return dict(load_bundle(builtin_bundle_dir() / name).files)


class TestCorpus:
    def test_corpus_ships_at_least_six_bundles(self):
        assert len(bundle_workload_names()) >= 6

    def test_corpus_registers_with_bundle_source(self):
        for name in bundle_workload_names():
            assert workload_source(name).startswith("bundle")

    def test_corpus_runs_verified_on_both_exact_cores(self):
        for name in bundle_workload_names():
            cycles = {}
            for core in ("fast", "vector"):
                config = get_config("gf106").replace(core_backend=core)
                gpu = GPU(config)
                workload = create_workload(name)
                workload.run(gpu)
                assert workload.verify(gpu), f"{name} on {core}"
                cycles[core] = gpu.cycle
            assert cycles["fast"] == cycles["vector"], name


class TestLoaderDiagnostics:
    """Every malformed-bundle error names the offending file."""

    def test_missing_file(self):
        files = corpus_files()
        del files["expected.csv"]
        with pytest.raises(BundleError, match="expected.csv"):
            load_bundle_files(files)

    def test_unknown_format_version(self):
        files = corpus_files()
        files["bundle.toml"] = files["bundle.toml"].replace(
            "format = 1", "format = 99")
        with pytest.raises(BundleError, match="bundle.toml") as excinfo:
            load_bundle_files(files)
        assert "format" in str(excinfo.value)

    def test_bad_column_name(self):
        files = corpus_files()
        files["program.csv"] = files["program.csv"].replace(
            "pc,opcode", "pc,mnemonic", 1)
        with pytest.raises(BundleError, match="program.csv"):
            load_bundle_files(files)

    def test_bad_column_value_names_file_line_and_column(self):
        files = corpus_files()
        files["program.csv"] = files["program.csv"].replace(
            "ld", "teleport", 1)
        with pytest.raises(BundleError) as excinfo:
            load_bundle_files(files)
        message = str(excinfo.value)
        assert "program.csv" in message
        assert "opcode" in message

    def test_launch_dim_mismatch(self):
        files = corpus_files()
        files["bundle.toml"] = files["bundle.toml"].replace(
            "grid_dim = 3", "grid_dim = 0")
        with pytest.raises(BundleError, match="bundle.toml") as excinfo:
            load_bundle_files(files)
        assert "grid_dim" in str(excinfo.value)

    def test_misaligned_expected_offset(self):
        files = corpus_files()
        # Offsets must be word-aligned (multiples of 4).
        files["expected.csv"] += "2,1.0\n"
        with pytest.raises(BundleError, match="expected.csv"):
            load_bundle_files(files)

    def test_undeclared_input_param(self):
        files = corpus_files()
        files["inputs.csv"] += "ghost,1\n"
        with pytest.raises(BundleError, match="inputs.csv"):
            load_bundle_files(files)

    def test_unknown_toml_key(self):
        files = corpus_files()
        files["bundle.toml"] += "\n[kernel]\ncolour = \"blue\"\n"
        with pytest.raises(BundleError, match="bundle.toml"):
            load_bundle_files(files)

    def test_wrong_expected_outputs_fail_verification(self):
        # Structurally valid but numerically wrong expected.csv loads
        # fine and then fails verify() — the runtime half of the check.
        files = corpus_files()
        lines = files["expected.csv"].splitlines(keepends=True)
        header, first = lines[0], lines[1]
        offset, value = first.strip().split(",")
        lines[1] = f"{offset},{float(value) + 1}\n"
        files["expected.csv"] = "".join(lines)
        bundle = load_bundle_files(files)
        workload = tracebundle.make_trace_workload(bundle)()
        gpu = GPU(get_config("gf106"))
        workload.run(gpu)
        assert not workload.verify(gpu)
        assert header.startswith("offset")


class TestExportRoundTrip:
    def test_export_params_cover_single_launch_builders(self):
        builders = {name for name in available_workloads()
                    if workload_source(name) == "builder"}
        single = {name for name in builders
                  if not self._overrides_run(name)}
        assert single == set(EXPORT_PARAMS)
        assert set(MULTI_LAUNCH) == builders - single

    @staticmethod
    def _overrides_run(name):
        from repro.workloads import workload_class

        return workload_class(name).run is not Workload.run

    @pytest.mark.parametrize("name", sorted(EXPORT_PARAMS))
    def test_export_load_run_is_byte_identical(self, name):
        params = EXPORT_PARAMS[name]
        files = export_workload(name, workload_kwargs=dict(params))

        # Baseline: the builder workload on a fresh gf106.
        gpu = GPU(get_config("gf106"))
        builder = create_workload(name, **params)
        baseline = builder.run(gpu)
        assert builder.verify(gpu)

        # The loaded bundle replays the same launch bit-for-bit.
        bundle = load_bundle_files(files, origin=f"<export:{name}>")
        replay_gpu = GPU(get_config("gf106"))
        replay = tracebundle.make_trace_workload(bundle)().run(replay_gpu)
        assert len(replay) == len(baseline) == 1
        assert replay[0].cycles == baseline[0].cycles
        assert replay[0].instructions == baseline[0].instructions
        assert replay[0].stats == baseline[0].stats

    @pytest.mark.parametrize("name", sorted(EXPORT_PARAMS))
    def test_stream_envelope_preserves_bytes(self, name):
        files = export_workload(name, workload_kwargs=dict(EXPORT_PARAMS[name]))
        assert read_bundle_stream(write_bundle_stream(files)) == files

    @pytest.mark.parametrize("name", MULTI_LAUNCH)
    def test_multi_launch_builders_rejected(self, name):
        with pytest.raises(BundleError, match=name):
            export_workload(name)


class TestStoreKeyStability:
    def test_fingerprint_is_path_independent(self, tmp_path):
        files = corpus_files()
        a = load_bundle(write_bundle_dir(files, tmp_path / "here"))
        b = load_bundle(write_bundle_dir(files, tmp_path / "elsewhere"))
        assert a.fingerprint == b.fingerprint

    def test_spec_hash_stable_across_paths(self, tmp_path):
        files = corpus_files()
        experiment = Experiment.dynamic("gf106", "tmp_saxpy", buckets=4)
        hashes = []
        for sub in ("one", "two"):
            bundle = load_bundle(write_bundle_dir(files, tmp_path / sub))
            # Rename so we never shadow the packaged corpus entry.
            bundle.name = "tmp_saxpy"
            register_bundle(bundle, source=f"bundle:{tmp_path / sub}",
                            overwrite=True)
            try:
                hashes.append(experiment.spec_hash())
            finally:
                unregister_workload("tmp_saxpy")
        assert hashes[0] == hashes[1]

    def test_spec_hash_changes_with_bundle_content(self):
        files = corpus_files()
        mutated = files["bundle.toml"].replace("tolerance = 0.0",
                                               "tolerance = 0.5")
        assert mutated != files["bundle.toml"]
        experiment = Experiment.dynamic("gf106", "tmp_saxpy2", buckets=4)
        hashes = []
        for toml in (files["bundle.toml"], mutated):
            bundle = load_bundle_files(dict(files, **{"bundle.toml": toml}))
            bundle.name = "tmp_saxpy2"
            register_bundle(bundle, source="bundle:test", overwrite=True)
            try:
                hashes.append(experiment.spec_hash())
            finally:
                unregister_workload("tmp_saxpy2")
        assert hashes[0] != hashes[1]


class TestBundleCli:
    def test_workloads_json_reports_source(self, capsys):
        assert main(["workloads", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        sources = {entry["name"]: entry["source"]
                   for entry in report["workloads"]}
        assert sources["vecadd"] == "builder"
        assert sources["saxpy"] == "bundle"
        assert report["bundle_count"] >= 6

    def test_bundle_list_json(self, capsys):
        assert main(["bundle", "list", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in report["bundles"]]
        assert "saxpy" in names and len(names) >= 6
        for entry in report["bundles"]:
            assert len(entry["fingerprint"]) == 64

    def test_bundle_validate_names_offending_file(self, tmp_path, capsys):
        files = corpus_files()
        del files["memory.csv"]
        broken = tmp_path / "broken"
        broken.mkdir()
        for filename, content in files.items():
            (broken / filename).write_text(content)
        assert main(["bundle", "validate", str(broken)]) == 1
        assert "memory.csv" in capsys.readouterr().err

    def test_export_pipe_run_round_trips(self, capsys, monkeypatch):
        # The acceptance pipe: repro bundle export vecadd | repro bundle
        # run -  reproduces the builder workload's cycle count.
        gpu = GPU(get_config("gf106"))
        builder = create_workload("vecadd")
        baseline = builder.run(gpu)
        assert builder.verify(gpu)

        assert main(["bundle", "export", "vecadd"]) == 0
        stream = capsys.readouterr().out
        assert stream.startswith(tracebundle.STREAM_HEADER)

        # 'bundle run -' registers the streamed bundle over the builder
        # name for the rest of this process; restore it afterwards.
        from repro.workloads import VecAddWorkload, register_workload

        try:
            monkeypatch.setattr(sys, "stdin", io.StringIO(stream))
            assert main(["bundle", "run", "-", "--json"]) == 0
            replayed = json.loads(capsys.readouterr().out)
        finally:
            register_workload(VecAddWorkload, overwrite=True)
        assert replayed["total_cycles"] == baseline[0].cycles

    def test_bundle_dir_flag_registers_and_runs(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.delenv(tracebundle.BUNDLE_PATH_ENV, raising=False)
        files = export_workload("vecadd", bundle_name="tmp_vecadd",
                                workload_kwargs={"n": 128, "block_dim": 32})
        write_bundle_dir(files, tmp_path / "tmp_vecadd")
        try:
            assert main(["--bundle-dir", str(tmp_path), "bundle", "list",
                         "--json"]) == 0
            report = json.loads(capsys.readouterr().out)
            names = [entry["name"] for entry in report["bundles"]]
            assert "tmp_vecadd" in names
        finally:
            unregister_workload("tmp_vecadd")
            monkeypatch.delenv(tracebundle.BUNDLE_PATH_ENV, raising=False)
