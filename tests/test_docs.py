"""Offline documentation checks.

Two families of tests, both network-free (CI runs them in the ``docs``
job, and they are part of the tier-1 suite):

* **Link integrity** — every relative markdown link in the user-facing
  docs (README, CONTRIBUTING, ``docs/*.md``) resolves to an existing
  file, and anchored links (``file.md#heading``) point at a heading
  that actually exists in the target.

* **Spec drift** — ``docs/kernel-bundles.md`` is the *normative*
  bundle-format reference, so its tables are diffed against the loader
  constants in ``repro.workloads.tracebundle``: every ``bundle.toml``
  section/key the loader parses must be documented, every documented
  key must be parsed (no doc-only keys), and the CSV column sets,
  parameter types, opcode list, and stream-envelope header must match
  the code exactly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.isa import CmpOp, Opcode
from repro.isa.operands import SPECIAL_REGISTER_NAMES
from repro.workloads import tracebundle

ROOT = Path(__file__).resolve().parent.parent
BUNDLE_DOC = ROOT / "docs" / "kernel-bundles.md"

DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "CONTRIBUTING.md"]
    + list((ROOT / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def _heading_anchor(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    prose = _CODE_FENCE_RE.sub("", path.read_text())
    return {_heading_anchor(h) for h in _HEADING_RE.findall(prose)}


def _relative_links(path: Path):
    prose = _CODE_FENCE_RE.sub("", path.read_text())
    for target in _LINK_RE.findall(prose):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


class TestLinks:
    def test_doc_files_exist(self):
        assert BUNDLE_DOC in DOC_FILES
        assert ROOT / "docs" / "architecture.md" in DOC_FILES
        assert len(DOC_FILES) >= 4

    @pytest.mark.parametrize(
        "doc", DOC_FILES, ids=[p.name for p in DOC_FILES]
    )
    def test_relative_links_resolve(self, doc):
        broken = []
        for target in _relative_links(doc):
            rel, _, anchor = target.partition("#")
            dest = (doc.parent / rel).resolve() if rel else doc
            if not dest.is_relative_to(ROOT):
                # GitHub web-UI paths (e.g. the ../../actions/ CI
                # badge) are not repository files.
                continue
            if not dest.exists():
                broken.append(f"{target}: no such file {dest}")
            elif anchor and dest.suffix == ".md":
                if anchor not in _anchors(dest):
                    broken.append(f"{target}: no heading #{anchor}")
        assert not broken, f"{doc.name}: broken links: {broken}"

    def test_readme_points_at_the_spec_and_the_map(self):
        readme = (ROOT / "README.md").read_text()
        assert "docs/kernel-bundles.md" in readme
        assert "docs/architecture.md" in readme


def _spec_table_rows():
    """(section, key) pairs from the bundle.toml table in the spec.

    Rows look like ``| (top level) | `format` | ...`` or
    ``| `[kernel]` | `name` | ...``; the free-form ``[params]`` row has
    an italicized (non-backticked) key cell and is skipped here.
    """
    rows = []
    for line in BUNDLE_DOC.read_text().splitlines():
        if not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if len(cells) < 2 or not cells[1].startswith("`"):
            continue
        first = cells[0]
        if first == "(top level)":
            rows.append(("", cells[1].strip("`")))
        elif first.startswith("`[") and first.endswith("]`"):
            rows.append((first.strip("`").strip("[]"), cells[1].strip("`")))
    return rows


class TestBundleSpecDrift:
    """docs/kernel-bundles.md must match the loader exactly."""

    def test_toml_keys_documented_and_parsed(self):
        documented = set(_spec_table_rows())
        parsed = {
            (section, key)
            for section, keys in tracebundle.BUNDLE_TOML_KEYS.items()
            for key in keys
        }
        assert documented == parsed, (
            f"doc-only keys: {sorted(documented - parsed)}; "
            f"undocumented keys: {sorted(parsed - documented)}"
        )

    def test_free_form_sections_documented(self):
        # Sections with no fixed key set ([params]) still need a row.
        text = BUNDLE_DOC.read_text()
        for section, keys in tracebundle.BUNDLE_TOML_KEYS.items():
            if not keys:
                assert f"`[{section}]`" in text, section

    def test_every_bundle_file_documented(self):
        text = BUNDLE_DOC.read_text()
        for filename in tracebundle.BUNDLE_FILES:
            assert f"`{filename}`" in text, filename

    @pytest.mark.parametrize(
        ("columns", "names"),
        [
            ("program", tracebundle.PROGRAM_COLUMNS),
            ("memory", tracebundle.MEMORY_COLUMNS),
            ("inputs", tracebundle.INPUTS_COLUMNS),
        ],
    )
    def test_csv_columns_documented(self, columns, names):
        text = BUNDLE_DOC.read_text()
        for name in names:
            assert f"`{name}`" in text, f"{columns} column {name}"

    def test_param_types_documented(self):
        text = BUNDLE_DOC.read_text()
        for kind in tracebundle.PARAM_TYPES:
            assert f'`"{kind}"`' in text, kind

    def test_opcodes_documented(self):
        prose = _CODE_FENCE_RE.sub("", BUNDLE_DOC.read_text())
        tokens = set(re.findall(r"[\w]+", prose))
        missing = [op.value for op in Opcode if op.value not in tokens]
        assert not missing, f"undocumented opcodes: {missing}"

    def test_modifiers_and_specials_documented(self):
        prose = _CODE_FENCE_RE.sub("", BUNDLE_DOC.read_text())
        tokens = set(re.findall(r"[\w]+", prose))
        for cmp_op in CmpOp:
            assert cmp_op.value in tokens, cmp_op
        for name in SPECIAL_REGISTER_NAMES:
            assert name in tokens, name

    def test_pinned_literals(self):
        text = BUNDLE_DOC.read_text()
        assert f"`format = {tracebundle.FORMAT_VERSION}`" in text
        assert tracebundle.STREAM_HEADER in text
        assert str(tracebundle.IMAGE_BASE) in text
        assert "$REPRO_BUNDLE_PATH" in text
        assert tracebundle.BUNDLE_PATH_ENV == "REPRO_BUNDLE_PATH"

    def test_worked_example_matches_the_corpus(self):
        # The saxpy excerpts in the spec are real file contents, not
        # illustrative pseudo-data.
        bundle = tracebundle.load_bundle(
            tracebundle.builtin_bundle_dir() / "saxpy"
        )
        text = BUNDLE_DOC.read_text()
        for line in bundle.files["inputs.csv"].splitlines():
            assert line in text, f"inputs.csv line {line!r} not in spec"
        program_lines = [
            line
            for line in bundle.files["program.csv"].splitlines()
            if line and not line.lstrip().startswith("#")
        ]
        for line in program_lines[:6]:  # header + first five rows
            assert line in text, f"program.csv line {line!r} not in spec"


class TestCliHelp:
    def test_bundle_help_points_at_the_spec(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["bundle", "--help"])
        assert excinfo.value.code == 0
        assert "docs/kernel-bundles.md" in capsys.readouterr().out
