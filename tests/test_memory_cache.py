"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.utils.errors import ConfigurationError


def small_cache(size=1024, line=64, assoc=2, set_index_fn=None):
    return SetAssociativeCache(
        CacheGeometry(size, line, assoc, name="test"), set_index_fn=set_index_fn
    )


class TestGeometry:
    def test_derived_quantities(self):
        geometry = CacheGeometry(16 * 1024, 128, 4)
        assert geometry.num_lines == 128
        assert geometry.num_sets == 32

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(1024, 100, 2)

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(1000, 64, 2)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(1024, 64, 0)
        with pytest.raises(ConfigurationError):
            CacheGeometry(1024, 64, 3)   # sets would not be a power of two

    def test_rejects_non_positive_size(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(0, 64, 2)


class TestCacheBehaviour:
    def test_miss_then_hit_after_fill(self):
        cache = small_cache()
        assert not cache.access(0x100)
        cache.fill(0x100)
        assert cache.access(0x100)
        assert cache.access(0x13c)        # same 64-byte line

    def test_probe_does_not_change_lru(self):
        cache = small_cache(size=128, line=64, assoc=2)
        cache.fill(0x000)
        cache.fill(0x200)
        cache.probe(0x000)                 # probe must not refresh LRU
        cache.fill(0x400)                  # evicts the true LRU: 0x000
        assert not cache.probe(0x000)
        assert cache.probe(0x200)

    def test_lru_eviction_order(self):
        cache = small_cache(size=128, line=64, assoc=2)   # one set
        cache.fill(0x000)
        cache.fill(0x200)
        cache.access(0x000)                # 0x200 becomes LRU
        victim = cache.fill(0x400)
        assert victim == 0x200

    def test_fill_existing_line_returns_none(self):
        cache = small_cache()
        cache.fill(0x80)
        assert cache.fill(0x80) is None

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(0x80)
        assert cache.invalidate(0x80)
        assert not cache.probe(0x80)
        assert not cache.invalidate(0x80)

    def test_flush(self):
        cache = small_cache()
        cache.fill(0x80)
        cache.fill(0x180)
        cache.flush()
        assert cache.resident_lines == 0

    def test_hit_rate_and_stats(self):
        cache = small_cache()
        cache.access(0x0)          # miss
        cache.fill(0x0)
        cache.access(0x0)          # hit
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 1
        assert cache.hit_rate() == 0.5

    def test_hit_rate_zero_without_accesses(self):
        assert small_cache().hit_rate() == 0.0

    def test_custom_set_index_function(self):
        # Map everything to set 0 and check that associativity then bounds
        # the number of resident lines.
        cache = small_cache(size=1024, line=64, assoc=2,
                            set_index_fn=lambda addr: 0)
        for index in range(4):
            cache.fill(index * 64)
        assert cache.resident_lines == 2


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=200))
    @settings(max_examples=50)
    def test_capacity_never_exceeded(self, addresses):
        cache = small_cache(size=512, line=64, assoc=2)
        for address in addresses:
            cache.fill(address)
            assert cache.resident_lines <= cache.geometry.num_lines
        for address in addresses[-cache.geometry.associativity:]:
            pass

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                    max_size=100))
    @settings(max_examples=50)
    def test_fill_makes_line_resident(self, addresses):
        cache = small_cache(size=2048, line=64, assoc=4)
        for address in addresses:
            cache.fill(address)
            assert cache.probe(address)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                    max_size=100))
    @settings(max_examples=50)
    def test_working_set_within_one_set_capacity_always_hits(self, addresses):
        # If we restrict addresses to at most `assoc` distinct lines of one
        # set, re-accessing them after filling can never miss (LRU keeps
        # them all resident).
        cache = small_cache(size=1024, line=64, assoc=4)
        lines = [((address // 64) % 4) * 64 * cache.geometry.num_sets
                 for address in addresses]
        for line in lines:
            cache.fill(line)
        for line in set(lines):
            assert cache.probe(line)
