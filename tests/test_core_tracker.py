"""Tests for the latency tracker, lifetime events, and stage classification."""

import pytest
from hypothesis import given, strategies as st

from repro.core.stages import EVENT_ORDER, Event, Stage, classify_lifetime
from repro.core.tracker import LatencyTracker, LoadRecord
from repro.isa.opcodes import MemSpace
from repro.memory.request import MemoryRequest


def make_request(address=0x1000, is_write=False):
    return MemoryRequest(address=address, size=128, is_write=is_write,
                         space=MemSpace.GLOBAL, sm_id=0, warp_id=1, pc=2)


class TestClassifyLifetime:
    def test_l1_hit_is_all_sm_base(self):
        breakdown = classify_lifetime({
            Event.ISSUE: 0,
            Event.L1_ACCESS: 8,
            Event.COMPLETE: 45,
        })
        assert breakdown[Stage.SM_BASE] == 45
        assert sum(breakdown.values()) == 45
        assert breakdown[Stage.L1_TO_ICNT] == 0

    def test_l2_hit_path(self):
        breakdown = classify_lifetime({
            Event.ISSUE: 0,
            Event.L1_ACCESS: 8,
            Event.ICNT_INJECT: 12,
            Event.ROP_ARRIVE: 32,
            Event.L2Q_ARRIVE: 90,
            Event.L2_DATA: 280,
            Event.COMPLETE: 310,
        })
        assert breakdown[Stage.SM_BASE] == 8
        assert breakdown[Stage.L1_TO_ICNT] == 4
        assert breakdown[Stage.ICNT_TO_ROP] == 20
        assert breakdown[Stage.ROP_TO_L2Q] == 58
        assert breakdown[Stage.L2Q_TO_DRAMQ] == 190
        assert breakdown[Stage.FETCH_TO_SM] == 30
        assert breakdown[Stage.DRAM_Q_TO_SCH] == 0
        assert sum(breakdown.values()) == 310

    def test_dram_path(self):
        breakdown = classify_lifetime({
            Event.ISSUE: 0,
            Event.L1_ACCESS: 10,
            Event.ICNT_INJECT: 20,
            Event.ROP_ARRIVE: 40,
            Event.L2Q_ARRIVE: 100,
            Event.DRAM_Q_ARRIVE: 120,
            Event.DRAM_SCHEDULED: 400,
            Event.DRAM_DATA: 460,
            Event.COMPLETE: 685,
        })
        assert breakdown[Stage.DRAM_Q_TO_SCH] == 280
        assert breakdown[Stage.DRAM_SCH_TO_A] == 60
        assert breakdown[Stage.FETCH_TO_SM] == 225
        assert sum(breakdown.values()) == 685

    def test_requires_issue_and_complete(self):
        with pytest.raises(ValueError):
            classify_lifetime({Event.ISSUE: 0})
        with pytest.raises(ValueError):
            classify_lifetime({Event.COMPLETE: 10})

    def test_non_monotonic_rejected(self):
        with pytest.raises(ValueError):
            classify_lifetime({
                Event.ISSUE: 10,
                Event.L1_ACCESS: 5,
                Event.COMPLETE: 20,
            })

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=2,
                    max_size=len(EVENT_ORDER)))
    def test_breakdown_always_sums_to_latency(self, deltas):
        # Build a monotonic timestamp dict over a random prefix of events.
        events = list(EVENT_ORDER[:len(deltas) - 1]) + [Event.COMPLETE]
        timestamps = {}
        time = 0
        for event, delta in zip(events, deltas):
            time += delta
            timestamps[event] = time
        if Event.ISSUE not in timestamps:
            timestamps[Event.ISSUE] = 0
        breakdown = classify_lifetime(timestamps)
        expected = timestamps[Event.COMPLETE] - timestamps[Event.ISSUE]
        assert sum(breakdown.values()) == expected


class TestTrackerRequests:
    def test_records_completed_reads(self):
        tracker = LatencyTracker()
        request = make_request()
        tracker.record_event(request, Event.ISSUE, 0)
        tracker.record_event(request, Event.L1_ACCESS, 5)
        tracker.finish_request(request, 40)
        assert len(tracker.requests) == 1
        record = tracker.requests[0]
        assert record.latency == 40
        assert record.breakdown()[Stage.SM_BASE] == 40

    def test_writes_excluded_by_default(self):
        tracker = LatencyTracker()
        request = make_request(is_write=True)
        tracker.record_event(request, Event.ISSUE, 0)
        tracker.finish_request(request, 10)
        assert tracker.requests == []
        tracker_with_writes = LatencyTracker(track_writes=True)
        request = make_request(is_write=True)
        tracker_with_writes.record_event(request, Event.ISSUE, 0)
        tracker_with_writes.finish_request(request, 10)
        assert len(tracker_with_writes.requests) == 1

    def test_untracked_requests_dropped(self):
        tracker = LatencyTracker()
        request = make_request()
        request.tracked = False
        tracker.record_event(request, Event.ISSUE, 0)
        tracker.finish_request(request, 10)
        assert tracker.requests == []
        assert tracker.dropped_requests == 1

    def test_disabled_tracker_records_nothing(self):
        tracker = LatencyTracker(enabled=False)
        request = make_request()
        tracker.record_event(request, Event.ISSUE, 0)
        tracker.finish_request(request, 10)
        tracker.record_load(0, 0, 0, "global", 0, 10, 1, False)
        tracker.note_issue_cycle(0, 5)
        assert tracker.requests == []
        assert tracker.loads == []
        assert tracker.busy_cycles_in(0, 0, 100) == 0

    def test_space_filtering(self):
        tracker = LatencyTracker()
        glob = make_request()
        tracker.record_event(glob, Event.ISSUE, 0)
        tracker.finish_request(glob, 5)
        local = MemoryRequest(address=0, size=128, is_write=False,
                              space=MemSpace.LOCAL, sm_id=0)
        tracker.record_event(local, Event.ISSUE, 0)
        tracker.finish_request(local, 5)
        assert len(tracker.read_requests()) == 2
        assert len(tracker.read_requests(space="global")) == 1

    def test_clear(self):
        tracker = LatencyTracker()
        request = make_request()
        tracker.record_event(request, Event.ISSUE, 0)
        tracker.finish_request(request, 5)
        tracker.note_issue_cycle(0, 1)
        tracker.clear()
        assert not tracker.requests
        assert tracker.busy_cycles_in(0, 0, 10) == 0


class TestExposureAccounting:
    def test_busy_cycle_counting(self):
        tracker = LatencyTracker()
        for cycle in (5, 6, 7, 20):
            tracker.note_issue_cycle(0, cycle)
        assert tracker.busy_cycles_in(0, 0, 10) == 3
        assert tracker.busy_cycles_in(0, 6, 21) == 3
        assert tracker.busy_cycles_in(0, 8, 20) == 0

    def test_duplicate_issue_cycles_collapse(self):
        tracker = LatencyTracker()
        tracker.note_issue_cycle(0, 5)
        tracker.note_issue_cycle(0, 5)
        assert tracker.busy_cycles_in(0, 0, 10) == 1

    def test_exposed_cycles_of_load(self):
        tracker = LatencyTracker()
        for cycle in range(10, 20):
            tracker.note_issue_cycle(0, cycle)
        load = LoadRecord(sm_id=0, warp_id=0, pc=0, space="global",
                          issue_cycle=0, complete_cycle=40, num_requests=1,
                          l1_hit=False)
        # 40 cycles total, 10 of them busy -> 30 exposed.
        assert tracker.exposed_cycles(load) == 30

    def test_fully_hidden_load(self):
        tracker = LatencyTracker()
        for cycle in range(0, 50):
            tracker.note_issue_cycle(1, cycle)
        load = LoadRecord(sm_id=1, warp_id=0, pc=0, space="global",
                          issue_cycle=10, complete_cycle=30, num_requests=1,
                          l1_hit=True)
        assert tracker.exposed_cycles(load) == 0

    def test_other_sm_activity_does_not_hide(self):
        tracker = LatencyTracker()
        for cycle in range(0, 50):
            tracker.note_issue_cycle(1, cycle)
        load = LoadRecord(sm_id=0, warp_id=0, pc=0, space="global",
                          issue_cycle=0, complete_cycle=20, num_requests=1,
                          l1_hit=False)
        assert tracker.exposed_cycles(load) == 20

    def test_summary_aggregates(self):
        tracker = LatencyTracker()
        request = make_request()
        tracker.record_event(request, Event.ISSUE, 0)
        tracker.finish_request(request, 100)
        tracker.record_load(0, 0, 0, "global", 0, 100, 1, False)
        summary = tracker.summary()
        assert summary["tracked_reads"] == 1
        assert summary["read_latency_mean"] == 100
        assert 0 <= summary["exposed_fraction_mean"] <= 1
