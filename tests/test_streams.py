"""Tests for the stream-based launch path.

Covers the concurrent surface introduced around ``GPU.submit`` /
``GPU.run_until_idle``: stream ordering, SM partitioning, per-kernel
stat attribution (and its sums-to-device-delta invariant), the
``scenario`` experiment kind end to end, and determinism of parallel
scenario execution.
"""

import pytest

from repro.experiments import (
    Experiment,
    Session,
    parse_scenario_kernel_token,
)
from repro.gpu import GPU, get_config
from repro.utils.errors import (
    ConfigurationError,
    ExperimentError,
    SimulationError,
)
from repro.workloads import create_workload

EXACT_CORES = ("reference", "fast", "vector")

SHARED = (None, None)
PARTITIONED = ((0, 1), (2, 3))


def make_gpu(core="fast", config_name="gf106"):
    return GPU(get_config(config_name).replace(core_backend=core))


def run_two_kernel_scenario(gpu, masks=SHARED, streams=(0, 1), n=512):
    """Submit vecadd + stencil concurrently and run the device to idle."""
    workloads = [create_workload("vecadd", n=n),
                 create_workload("stencil", n=n)]
    specs = [workload.prepare(gpu) for workload in workloads]
    for workload, spec, stream, mask in zip(workloads, specs, streams,
                                            masks):
        gpu.submit(workload.program, grid_dim=spec.grid_dim,
                   block_dim=spec.block_dim, params=spec.params,
                   stream=stream, sm_mask=mask)
    results = gpu.run_until_idle(attribute=True)
    return workloads, results


def result_fingerprint(results):
    return [
        (r.kernel_name, r.launch_id, r.stream, r.cycles, r.start_cycle,
         r.end_cycle, r.instructions, r.overlap_cycles, sorted(r.stats.items()))
        for r in results
    ]


class TestSubmitValidation:
    def test_negative_stream_rejected(self):
        gpu = make_gpu()
        workload = create_workload("vecadd", n=128)
        spec = workload.prepare(gpu)
        with pytest.raises(ConfigurationError, match="stream id"):
            gpu.submit(workload.program, spec.grid_dim, spec.block_dim,
                       params=spec.params, stream=-1)

    def test_empty_sm_mask_rejected(self):
        gpu = make_gpu()
        workload = create_workload("vecadd", n=128)
        spec = workload.prepare(gpu)
        with pytest.raises(ConfigurationError, match="at least one SM"):
            gpu.submit(workload.program, spec.grid_dim, spec.block_dim,
                       params=spec.params, sm_mask=[])

    def test_out_of_range_sm_mask_rejected(self):
        gpu = make_gpu()  # gf106: 4 SMs
        workload = create_workload("vecadd", n=128)
        spec = workload.prepare(gpu)
        with pytest.raises(ConfigurationError, match=r"\[7\]"):
            gpu.submit(workload.program, spec.grid_dim, spec.block_dim,
                       params=spec.params, sm_mask=[0, 7])

    def test_launch_refuses_outstanding_submissions(self):
        gpu = make_gpu()
        workload = create_workload("vecadd", n=128)
        spec = workload.prepare(gpu)
        gpu.submit(workload.program, spec.grid_dim, spec.block_dim,
                   params=spec.params)
        with pytest.raises(SimulationError, match="run_until_idle"):
            gpu.launch(workload.program, spec.grid_dim, spec.block_dim,
                       params=spec.params)


class TestStreamSemantics:
    def test_same_stream_serializes(self):
        gpu = make_gpu()
        _, results = run_two_kernel_scenario(gpu, streams=(0, 0))
        first, second = results
        assert second.start_cycle >= first.end_cycle
        # Windows may touch at the handover cycle but never interleave.
        assert second.overlap_cycles <= 1

    def test_different_streams_overlap(self):
        gpu = make_gpu()
        _, results = run_two_kernel_scenario(gpu, streams=(0, 1))
        assert all(result.overlap_cycles > 0 for result in results)

    def test_results_in_submission_order(self):
        gpu = make_gpu()
        _, results = run_two_kernel_scenario(gpu)
        assert [r.launch_id for r in results] == [0, 1]
        assert [r.stream for r in results] == [0, 1]
        assert results[0].kernel_name == "vecadd"
        assert results[1].kernel_name == "stencil3"

    def test_partitioned_masks_confine_execution(self):
        gpu = make_gpu()
        _, results = run_two_kernel_scenario(gpu, masks=PARTITIONED)
        banned = {0: ("sm2", "sm3"), 1: ("sm0", "sm1")}
        for result in results:
            for key, value in result.stats.items():
                if value and key.split(".")[0] in banned[result.launch_id]:
                    pytest.fail(
                        f"launch {result.launch_id} has stats on a "
                        f"masked-out SM: {key}={value}"
                    )

    def test_run_until_idle_with_nothing_submitted(self):
        gpu = make_gpu()
        assert gpu.run_until_idle() == []

    def test_back_to_back_drains_are_independent(self):
        gpu = make_gpu()
        _, first = run_two_kernel_scenario(gpu)
        _, second = run_two_kernel_scenario(gpu)
        assert [r.launch_id for r in second] == [2, 3]
        # The second drain re-attributes from scratch: fresh launch ids,
        # fresh windows, real work counted (addresses differ between the
        # two preparations, so exact cycle equality is not guaranteed).
        for result in second:
            assert result.cycles > 0
            assert result.instructions > 0
            assert result.end_cycle > result.start_cycle >= first[0].end_cycle


class TestExactCoreEquivalence:
    @pytest.mark.parametrize("masks", [SHARED, PARTITIONED],
                             ids=["shared", "partitioned"])
    def test_scenario_byte_identical_across_exact_cores(self, masks):
        fingerprints = {}
        for core in EXACT_CORES:
            gpu = make_gpu(core)
            _, results = run_two_kernel_scenario(gpu, masks=masks)
            fingerprints[core] = result_fingerprint(results)
        assert fingerprints["fast"] == fingerprints["reference"]
        assert fingerprints["vector"] == fingerprints["reference"]


class TestAttribution:
    def test_per_kernel_stats_sum_to_device_delta(self):
        gpu = make_gpu()
        start = gpu.collect_stats().as_dict()
        start_instructions = gpu._instructions_issued()
        _, results = run_two_kernel_scenario(gpu)
        end = gpu.collect_stats().as_dict()
        delta = {key: end[key] - start.get(key, 0) for key in end}
        attributed = {}
        for result in results:
            for key, value in result.stats.items():
                attributed[key] = attributed.get(key, 0) + value
        # Every attributed counter exists in the device delta and never
        # exceeds it; the residual (device minus attributed) is wholly
        # non-negative — attribution never invents work.
        for key, value in attributed.items():
            assert key in delta, key
            assert value <= delta[key], key
        for key in delta:
            residual = delta[key] - attributed.get(key, 0)
            assert residual >= 0, (key, residual)
        total_instructions = (gpu._instructions_issued()
                              - start_instructions)
        assert sum(r.instructions for r in results) == total_instructions

    def test_instructions_fully_attributed(self):
        gpu = make_gpu()
        _, results = run_two_kernel_scenario(gpu)
        for result in results:
            issued = sum(
                value for key, value in result.stats.items()
                if key.endswith(".instructions_issued"))
            assert issued == result.instructions > 0

    def test_unattributed_residual_is_memory_internals_only(self):
        gpu = make_gpu()
        start = gpu.collect_stats().as_dict()
        _, results = run_two_kernel_scenario(gpu)
        end = gpu.collect_stats().as_dict()
        delta = {key: end[key] - start.get(key, 0) for key in end}
        attributed = {}
        for result in results:
            for key, value in result.stats.items():
                attributed[key] = attributed.get(key, 0) + value
        residual = {key for key in delta
                    if delta[key] - attributed.get(key, 0) != 0}
        prefix = gpu.config.name
        for key in residual:
            assert (key == f"{prefix}.cycles"
                    or key.startswith(f"{prefix}.memory.")
                    or "issue_idle_cycles" in key), key


class TestLimitsAndClock:
    def test_launch_max_cycles_names_kernel(self):
        gpu = make_gpu()
        workload = create_workload("vecadd", n=4096)
        spec = workload.prepare(gpu)
        with pytest.raises(SimulationError,
                           match="kernel 'vecadd' exceeded 10 cycles"):
            gpu.launch(workload.program, spec.grid_dim, spec.block_dim,
                       params=spec.params, max_cycles=10)

    def test_scenario_max_cycles_names_kernel(self):
        gpu = make_gpu()
        workloads = [create_workload("vecadd", n=2048),
                     create_workload("stencil", n=2048)]
        specs = [workload.prepare(gpu) for workload in workloads]
        gpu.submit(workloads[0].program, specs[0].grid_dim,
                   specs[0].block_dim, params=specs[0].params, stream=0)
        gpu.submit(workloads[1].program, specs[1].grid_dim,
                   specs[1].block_dim, params=specs[1].params, stream=1,
                   max_cycles=10)
        with pytest.raises(SimulationError,
                           match="kernel 'stencil3' exceeded 10 cycles"):
            gpu.run_until_idle()

    @pytest.mark.parametrize("core", ("fast", "vector"))
    def test_advance_clock_never_moves_backwards(self, core, monkeypatch):
        gpu = make_gpu(core)
        observed = []

        # The hook fires at every clock-advance decision of both cycle
        # loops (generic and device-skip), just before the clock moves;
        # a strictly increasing decision-cycle sequence is exactly
        # "the clock never moves backwards".
        def recording(gpu_obj, issued):
            observed.append(gpu_obj.cycle)

        monkeypatch.setattr(type(gpu), "_clock_check_hook",
                            staticmethod(recording))
        create_workload("pointer_chase", footprint_bytes=2048,
                        stride_bytes=128, n_accesses=32).run(gpu)
        assert observed
        assert all(after > before
                   for before, after in zip(observed, observed[1:]))


class TestScenarioExperiments:
    def test_spec_hash_sparse_equals_canonical(self):
        sparse = Experiment.scenario("gf106", [
            {"workload": "vecadd"},
            {"workload": "stencil", "stream": 1},
        ])
        canonical = Experiment.scenario("gf106", [
            {"workload": "vecadd", "params": {}, "stream": 0,
             "sm_mask": None},
            {"workload": "stencil", "params": {}, "stream": 1,
             "sm_mask": None},
        ])
        assert sparse.spec_hash() == canonical.spec_hash()
        rebuilt = Experiment.from_json(sparse.to_json())
        assert rebuilt.spec_hash() == sparse.spec_hash()

    def test_unknown_kernel_field_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fields"):
            Experiment.scenario("gf106", [
                {"workload": "vecadd", "smmask": [0]},
            ])

    def test_empty_kernels_rejected(self):
        with pytest.raises(ExperimentError, match="non-empty"):
            Experiment.scenario("gf106", [])

    def test_multi_launch_workload_rejected(self):
        session = Session()
        experiment = Experiment.scenario("gf106", [
            {"workload": "bfs"},
            {"workload": "vecadd"},
        ])
        with pytest.raises(ExperimentError,
                           match="drives its own launch loop"):
            session.run(experiment)

    def test_record_attribution_invariant(self):
        session = Session()
        record = session.run(Experiment.scenario("gf106", [
            {"workload": "vecadd", "params": {"n": 256}},
            {"workload": "stencil", "params": {"n": 256}, "stream": 1},
        ]))
        assert record.kind == "scenario"
        assert record.payload["verified"] is True
        device = record.payload["device_stats"]
        combined = dict(record.payload["unattributed"])
        for launch in record.launches:
            for key, value in launch["stats"].items():
                combined[key] = combined.get(key, 0) + value
        nonzero_device = {key: value for key, value in device.items()
                          if value != 0}
        assert combined == nonzero_device
        assert record.total_cycles == record.payload["wall_cycles"]
        assert (record.payload["primary_cycles"]
                == record.launches[0]["cycles"])

    def test_scenario_launch_dicts_carry_identity(self):
        session = Session()
        record = session.run(Experiment.scenario("gf106", [
            {"workload": "vecadd", "params": {"n": 256}},
            {"workload": "stencil", "params": {"n": 256}, "stream": 1},
        ]))
        for index, launch in enumerate(record.launches):
            assert launch["launch_id"] == index
            assert launch["stream"] == index
            assert launch["overlap_cycles"] > 0

    def test_serial_and_parallel_runs_byte_identical(self):
        experiments = [
            Experiment.scenario("gf106", [
                {"workload": "vecadd", "params": {"n": 256}},
                {"workload": "stencil", "params": {"n": 256},
                 "stream": 1},
            ]),
            Experiment.scenario("gf106", [
                {"workload": "vecadd", "params": {"n": 256},
                 "sm_mask": [0, 1]},
                {"workload": "stencil", "params": {"n": 256},
                 "stream": 1, "sm_mask": [2, 3]},
            ]),
        ]
        serial = Session(cache=False).run_all(experiments)
        parallel = Session(cache=False).run_all(experiments, jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_estimator_scenario_labeled_approximate(self):
        session = Session(core="estimator")
        record = session.run(Experiment.scenario("gf106", [
            {"workload": "vecadd", "params": {"n": 256}},
            {"workload": "stencil", "params": {"n": 256}, "stream": 1},
        ]))
        assert record.payload["core"] == "estimator"
        assert record.payload["estimated_cycles"] is True

    def test_record_json_roundtrip(self):
        session = Session()
        record = session.run(Experiment.scenario("gf106", [
            {"workload": "vecadd", "params": {"n": 256}},
            {"workload": "stencil", "params": {"n": 256}, "stream": 1},
        ]))
        from repro.experiments import RunSet

        text = RunSet(records=[record]).to_json()
        reloaded = RunSet.from_json(text)
        assert reloaded.to_json() == text
        assert reloaded[0].launches == record.launches


class TestKernelTokenParsing:
    def test_bare_workload(self):
        assert parse_scenario_kernel_token("vecadd") == {
            "workload": "vecadd"}

    def test_full_token(self):
        entry = parse_scenario_kernel_token(
            "stencil:n=1024,stream=1,sm_mask=2+3")
        assert entry == {"workload": "stencil", "stream": 1,
                         "sm_mask": [2, 3], "params": {"n": 1024}}

    def test_single_sm_mask_value(self):
        entry = parse_scenario_kernel_token("vecadd:sm_mask=2")
        assert entry["sm_mask"] == [2]

    def test_malformed_sm_mask_rejected(self):
        with pytest.raises(ExperimentError, match="sm_mask"):
            parse_scenario_kernel_token("vecadd:sm_mask=0+x")

    def test_empty_token_rejected(self):
        with pytest.raises(ExperimentError, match="workload"):
            parse_scenario_kernel_token(":n=1")


class TestCoreBackendAliases:
    def test_session_accepts_core_backend(self):
        session = Session(core_backend="vector")
        assert session.core == "vector"

    def test_session_alias_conflict_rejected(self):
        with pytest.raises(ExperimentError, match="conflicts"):
            Session(core="fast", core_backend="vector")

    def test_session_matching_alias_accepted(self):
        session = Session(core="vector", core_backend="vector")
        assert session.core == "vector"

    def test_parallel_executor_accepts_core_backend(self):
        from repro.experiments import ParallelExecutor

        executor = ParallelExecutor(jobs=1, core_backend="vector")
        assert executor._core == "vector"

    def test_parallel_executor_alias_conflict_rejected(self):
        from repro.experiments import ParallelExecutor

        with pytest.raises(ExperimentError, match="conflicts"):
            ParallelExecutor(jobs=1, core="fast", core_backend="vector")


class TestColocationSweep:
    def test_sensitivity_neighbor_uses_primary_cycles(self):
        from repro.sensitivity import SensitivityStudy

        study = SensitivityStudy(
            config="gf106", workload="vecadd",
            transforms=("scale_dram_latency",), scales=(1.0, 4.0),
            params={"n": 256},
            neighbor={"workload": "stencil", "params": {"n": 256}},
        )
        assert study.neighbor["stream"] == 1
        result = study.run(session=Session())
        baseline = result.curves[0].points[0]
        # The baseline point is the primary kernel's attributed window,
        # not the scenario wall clock (which includes the neighbor).
        record = result.runs[0]
        assert record.kind == "scenario"
        assert baseline.cycles == record.payload["primary_cycles"]
        assert baseline.cycles < record.total_cycles

    def test_study_neighbor_roundtrips(self):
        from repro.sensitivity import SensitivityStudy

        study = SensitivityStudy(
            config="gf106", workload="vecadd",
            transforms=("scale_dram_latency",),
            neighbor={"workload": "stencil", "sm_mask": [2, 3]},
        )
        rebuilt = SensitivityStudy.from_json(study.to_json())
        assert rebuilt == study
        assert rebuilt.neighbor["sm_mask"] == [2, 3]

    def test_atlas_forwards_neighbor(self):
        from repro.sensitivity import LatencyToleranceAtlas

        atlas = LatencyToleranceAtlas(
            config="gf106", axis="ilp", values=(1, 2),
            neighbor={"workload": "vecadd", "params": {"n": 256}},
        )
        for study in atlas.studies():
            assert study.neighbor == atlas.neighbor
        rebuilt = LatencyToleranceAtlas.from_json(atlas.to_json())
        assert rebuilt == atlas


class TestScenarioSmoke:
    def test_scenario_smoke_report(self):
        from repro.experiments import run_scenario_smoke

        report = run_scenario_smoke(Session(core="fast"))
        assert report["cores"] == ["fast"]
        assert report["modes"] == ["partitioned", "shared"]
        assert report["all_verified"] is True
        assert report["all_attributed"] is True
        for run in report["runs"]:
            assert len(run["kernels"]) == 2
            for kernel in run["kernels"]:
                assert kernel["cycles"] > 0
                assert kernel["instructions"] > 0
