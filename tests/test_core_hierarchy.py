"""Tests for plateau detection and memory-hierarchy inference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hierarchy import (
    detect_plateaus,
    expected_level_count,
    infer_hierarchy,
)
from repro.core.pointer_chase import ChaseMeasurement, LatencySurface
from repro.utils.errors import ConfigurationError


def surface_from_curve(points, stride=128, config="synthetic"):
    measurements = [
        ChaseMeasurement(config_name=config, space="global",
                         footprint_bytes=footprint, stride_bytes=stride,
                         measured_accesses=100, cycles_per_access=latency,
                         baseline_cycles=0, measured_cycles=0)
        for footprint, latency in points
    ]
    return LatencySurface(config_name=config, space="global",
                          measurements=measurements)


THREE_LEVEL_CURVE = [
    (1024, 45.0), (2048, 45.3), (4096, 44.8), (8192, 45.1),
    (16384, 310.0), (32768, 309.5), (65536, 311.0),
    (131072, 684.0), (262144, 686.0),
]


class TestPlateauDetection:
    def test_empty_curve(self):
        assert detect_plateaus([]) == []

    def test_flat_curve_is_single_plateau(self):
        points = [(1 << i, 100.0 + (i % 3)) for i in range(10, 18)]
        assert len(detect_plateaus(points)) == 1

    def test_three_level_curve(self):
        plateaus = detect_plateaus(THREE_LEVEL_CURVE)
        assert len(plateaus) == 3
        assert [len(p) for p in plateaus] == [4, 3, 2]

    def test_small_noise_does_not_split(self):
        points = [(1024, 100.0), (2048, 104.0), (4096, 97.0), (8192, 102.0)]
        assert len(detect_plateaus(points)) == 1

    def test_threshold_parameters_respected(self):
        points = [(1024, 100.0), (2048, 130.0)]
        assert len(detect_plateaus(points, relative_step=0.5,
                                   absolute_step=50)) == 1
        assert len(detect_plateaus(points, relative_step=0.1,
                                   absolute_step=5)) == 2

    @given(st.lists(st.floats(min_value=10, max_value=20), min_size=1,
                    max_size=20))
    @settings(max_examples=30)
    def test_points_conserved(self, latencies):
        points = [((i + 1) * 1024, latency) for i, latency in enumerate(latencies)]
        plateaus = detect_plateaus(points)
        assert sum(len(p) for p in plateaus) == len(points)


class TestHierarchyInference:
    def test_three_levels_detected_with_capacities(self):
        surface = surface_from_curve(THREE_LEVEL_CURVE)
        estimate = infer_hierarchy(surface, stride_bytes=128)
        assert estimate.num_levels == 3
        assert estimate.latencies() == pytest.approx([45.05, 310.17, 685.0],
                                                     abs=1.0)
        assert estimate.levels[0].capacity_estimate == 8192
        assert estimate.levels[1].capacity_estimate == 65536

    def test_single_level_for_uncached_hierarchy(self):
        curve = [(1 << i, 440.0) for i in range(10, 19)]
        estimate = infer_hierarchy(surface_from_curve(curve), stride_bytes=128)
        assert estimate.num_levels == 1

    def test_default_stride_is_largest(self):
        measurements = (
            surface_from_curve(THREE_LEVEL_CURVE, stride=64).measurements
            + surface_from_curve(THREE_LEVEL_CURVE, stride=256).measurements
        )
        surface = LatencySurface("synthetic", "global", measurements)
        estimate = infer_hierarchy(surface)
        assert estimate.stride_bytes == 256

    def test_unknown_stride_rejected(self):
        surface = surface_from_curve(THREE_LEVEL_CURVE)
        with pytest.raises(ConfigurationError):
            infer_hierarchy(surface, stride_bytes=999)

    def test_empty_surface_rejected(self):
        with pytest.raises(ConfigurationError):
            infer_hierarchy(LatencySurface("x", "global", []))

    def test_describe_mentions_levels(self):
        estimate = infer_hierarchy(surface_from_curve(THREE_LEVEL_CURVE))
        text = estimate.describe()
        assert "3 level(s)" in text
        assert "capacity" in text

    def test_expected_level_count(self):
        assert expected_level_count(True, True) == 3
        assert expected_level_count(False, True) == 2
        assert expected_level_count(False, False) == 1


class TestLatencySurfaceAccessors:
    def test_grid_accessors(self):
        surface = surface_from_curve(THREE_LEVEL_CURVE)
        assert surface.footprints()[0] == 1024
        assert surface.strides() == [128]
        assert surface.latency(1024, 128) == 45.0
        with pytest.raises(KeyError):
            surface.latency(999, 128)

    def test_curve_sorted_by_footprint(self):
        surface = surface_from_curve(list(reversed(THREE_LEVEL_CURVE)))
        curve = surface.curve(128)
        footprints = [footprint for footprint, _ in curve]
        assert footprints == sorted(footprints)
