"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_registered(self):
        parser = build_parser()
        for command in ("configs", "workloads", "table1", "sweep", "dynamic"):
            args = parser.parse_args([command] if command in
                                     ("configs", "workloads") else [command])
            assert args.command == command

    def test_run_subcommand_registered(self):
        args = build_parser().parse_args(["run", "spec.json"])
        assert args.command == "run"
        assert args.spec == "spec.json"


class TestCommands:
    def test_configs_lists_all_presets(self, capsys):
        assert main(["configs"]) == 0
        output = capsys.readouterr().out
        for name in ("gt200", "gf106", "gf100", "gk104", "gm107"):
            assert name in output

    def test_workloads_lists_bfs(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "bfs" in output
        assert "pointer_chase" in output

    def test_unknown_config_rejected(self, capsys):
        assert main(["sweep", "--config", "gtx9000",
                     "--footprints", "4096"]) == 1
        err = capsys.readouterr().err
        assert "gtx9000" in err

    def test_table1_single_generation(self, capsys):
        assert main(["table1", "--configs", "gt200", "--accesses", "64"]) == 0
        output = capsys.readouterr().out
        assert "Tesla" in output
        assert "DRAM" in output
        assert "440" in output

    def test_sweep_with_explicit_footprints(self, capsys):
        assert main([
            "sweep", "--config", "gt200", "--accesses", "64",
            "--footprints", "4096", "16384",
        ]) == 0
        output = capsys.readouterr().out
        assert "cycles / access" in output
        assert "detected 1 level(s)" in output

    def test_dynamic_bfs_small(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "bfs",
            "--param", "num_nodes=256", "--param", "avg_degree=4",
            "--buckets", "8",
        ]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Figure 2" in output
        assert "exposed fraction" in output

    def test_dynamic_vecadd(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--buckets", "8",
        ]) == 0
        output = capsys.readouterr().out
        assert "vecadd" in output

    def test_dynamic_unknown_param_lists_valid_ones(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--param", "bogus=1",
        ]) == 1
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "block_dim" in err and "n" in err

    def test_dynamic_param_buckets_not_clobbered_by_default(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--param", "n=128", "--param", "buckets=3",
        ]) == 0
        output = capsys.readouterr().out
        # Three buckets requested via --param must survive the --buckets
        # argparse default; the exposure table then has at most 3 rows.
        table = output.split("Figure 2")[1]
        data_rows = [line for line in table.splitlines()
                     if line and line[0].isdigit()]
        assert 0 < len(data_rows) <= 3

    def test_run_spec_malformed_json_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["run", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: invalid experiment JSON")

    def test_dynamic_malformed_param_rejected(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--param", "nonsense",
        ]) == 1
        assert "key=value" in capsys.readouterr().err

    def test_run_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([
            {"kind": "dynamic", "configs": ["gf100"], "workload": "vecadd",
             "params": {"n": 128, "buckets": 8}},
            {"kind": "sweep", "configs": ["gt200"],
             "params": {"accesses": 48, "footprints": [4096, 16384]}},
        ]))
        output = tmp_path / "results.json"
        assert main(["run", str(spec), "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        assert "Figure 1" in out
        assert "detected" in out
        saved = json.loads(output.read_text())
        assert len(saved["records"]) == 2

    def test_run_spec_missing_file(self, capsys):
        assert main(["run", "/nonexistent/spec.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_cores_lists_registered_backends(self, capsys):
        assert main(["cores"]) == 0
        output = capsys.readouterr().out
        for name in ("reference", "fast", "vector", "estimator"):
            assert name in output
        assert "exact" in output

    def test_cores_json_machine_readable(self, capsys):
        assert main(["cores", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        names = [core["name"] for core in report["cores"]]
        assert report["core_count"] == len(names)
        for name in ("reference", "fast", "vector", "estimator"):
            assert name in names
        by_name = {core["name"]: core for core in report["cores"]}
        assert by_name["reference"]["exact"] is True
        assert by_name["estimator"]["exact"] is False

    def test_scenario_two_kernels(self, capsys):
        assert main([
            "scenario", "vecadd:n=256", "stencil:n=256,stream=1",
            "--config", "gf106",
        ]) == 0
        output = capsys.readouterr().out
        assert "2 concurrent kernel(s)" in output
        assert "vecadd" in output and "stencil3" in output
        assert "wall cycles" in output

    def test_scenario_json_record(self, capsys):
        assert main([
            "scenario", "vecadd:n=256",
            "stencil:n=256,stream=1,sm_mask=2+3",
            "--config", "gf106", "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "scenario"
        assert len(record["launches"]) == 2
        assert record["launches"][1]["stream"] == 1
        kernels = record["experiment"]["params"]["kernels"]
        assert kernels[1]["sm_mask"] == [2, 3]

    def test_scenario_rejects_multi_launch_workload(self, capsys):
        assert main(["scenario", "bfs", "--config", "gf106"]) == 1
        assert "launch loop" in capsys.readouterr().err

    def test_core_flag_on_all_experiment_subcommands(self):
        parser = build_parser()
        for argv in (["table1"], ["sweep"], ["dynamic"],
                     ["run", "spec.json"], ["sensitivity"], ["microbench"],
                     ["atlas"], ["smoke"], ["scenario", "vecadd"]):
            args = parser.parse_args(argv + ["--core", "vector"])
            assert args.core == "vector"

    def test_core_flag_selects_backend(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--param", "n=128", "--buckets", "8", "--core", "vector",
        ]) == 0
        assert "vecadd" in capsys.readouterr().out

    def test_unknown_core_rejected(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--core", "warpdrive",
        ]) == 1
        err = capsys.readouterr().err
        assert "warpdrive" in err

    def test_core_spec_with_options(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--param", "n=128", "--buckets", "8",
            "--core", "estimator:time_quantum=16",
        ]) == 0
        assert "vecadd" in capsys.readouterr().out

    def test_core_spec_unknown_option_rejected(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--core", "estimator:quantum=16",
        ]) == 1
        err = capsys.readouterr().err
        assert "estimator" in err
        assert "quantum" in err

    def test_core_spec_malformed_rejected(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--core", "estimator:time_quantum",
        ]) == 2
        err = capsys.readouterr().err
        assert "time_quantum" in err
        assert "key=value" in err

    def test_cores_json_lists_backend_options(self, capsys):
        assert main(["cores", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        by_name = {core["name"]: core for core in report["cores"]}
        estimator_options = by_name["estimator"]["options"]
        assert [option["name"] for option in estimator_options] == [
            "time_quantum"]
        option = estimator_options[0]
        assert option["type"] == "int"
        assert option["default"] is None
        assert option["description"]
        assert by_name["fast"]["options"] == []

    def test_cores_table_lists_backend_options(self, capsys):
        assert main(["cores"]) == 0
        output = capsys.readouterr().out
        assert "time_quantum" in output

    def test_reference_core_flag_deprecated_alias(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--param", "n=96", "--buckets", "4", "--reference-core",
        ]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "--core reference" in captured.err

    def test_reference_core_conflicting_core_rejected(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--core", "vector", "--reference-core",
        ]) == 2
        assert "conflicts" in capsys.readouterr().err


class TestSmokeCoreMatrix:
    def test_smoke_report_counts_cores(self, capsys, monkeypatch):
        from repro.experiments import smoke as smoke_module

        monkeypatch.setattr(smoke_module, "SMOKE_PARAMS",
                            {"vecadd": {"n": 96, "block_dim": 64}})
        monkeypatch.setattr(smoke_module, "bundle_workload_names",
                            lambda: [])
        monkeypatch.setattr(smoke_module, "check_registry_coverage",
                            lambda: None)
        assert main(["smoke", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cores"] == ["fast", "vector"]
        assert report["core_count"] == 2
        assert report["total_runs"] == (report["workload_count"]
                                        * report["config_count"]
                                        * report["core_count"])
        assert report["all_verified"] is True
        for core in report["cores"]:
            assert any(run["core"] == core for run in report["runs"])

    def test_smoke_with_explicit_core_runs_single_pass(self, capsys,
                                                       monkeypatch):
        from repro.experiments import smoke as smoke_module

        monkeypatch.setattr(smoke_module, "SMOKE_PARAMS",
                            {"vecadd": {"n": 96, "block_dim": 64}})
        monkeypatch.setattr(smoke_module, "bundle_workload_names",
                            lambda: [])
        monkeypatch.setattr(smoke_module, "check_registry_coverage",
                            lambda: None)
        assert main(["smoke", "--json", "--core", "vector"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cores"] == ["vector"]
        assert report["core_count"] == 1
        assert report["all_verified"] is True

    def test_smoke_scenarios_json(self, capsys):
        assert main(["smoke", "--scenarios", "--json",
                     "--core", "fast"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["config"] == "gf106"
        assert report["modes"] == ["partitioned", "shared"]
        assert report["all_verified"] is True
        assert report["all_attributed"] is True
        for run in report["runs"]:
            assert [k["workload"] for k in run["kernels"]] == [
                "vecadd", "stencil"]
            if run["mode"] == "partitioned":
                assert [k["sm_mask"] for k in run["kernels"]] == [
                    [0, 1], [2, 3]]

    def test_smoke_scenarios_table(self, capsys):
        assert main(["smoke", "--scenarios", "--core", "fast"]) == 0
        output = capsys.readouterr().out
        assert "Scenario smoke" in output
        assert "partitioned" in output and "shared" in output

    def test_dynamic_output_roundtrips(self, tmp_path, capsys):
        from repro.experiments import RunSet

        output = tmp_path / "run.json"
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--param", "n=128", "--buckets", "8",
            "--output", str(output),
        ]) == 0
        loaded = RunSet.load(output)
        assert len(loaded) == 1
        assert loaded[0].kind == "dynamic"
        assert loaded[0].to_json() == RunSet.from_json(
            output.read_text()).records[0].to_json()
