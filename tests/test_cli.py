"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_registered(self):
        parser = build_parser()
        for command in ("configs", "workloads", "table1", "sweep", "dynamic"):
            args = parser.parse_args([command] if command in
                                     ("configs", "workloads") else [command])
            assert args.command == command

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--config", "gtx9000"])


class TestCommands:
    def test_configs_lists_all_presets(self, capsys):
        assert main(["configs"]) == 0
        output = capsys.readouterr().out
        for name in ("gt200", "gf106", "gf100", "gk104", "gm107"):
            assert name in output

    def test_workloads_lists_bfs(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "bfs" in output
        assert "pointer_chase" in output

    def test_table1_single_generation(self, capsys):
        assert main(["table1", "--configs", "gt200", "--accesses", "64"]) == 0
        output = capsys.readouterr().out
        assert "Tesla" in output
        assert "DRAM" in output
        assert "440" in output

    def test_sweep_with_explicit_footprints(self, capsys):
        assert main([
            "sweep", "--config", "gt200", "--accesses", "64",
            "--footprints", "4096", "16384",
        ]) == 0
        output = capsys.readouterr().out
        assert "cycles / access" in output
        assert "detected 1 level(s)" in output

    def test_dynamic_bfs_small(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "bfs",
            "--nodes", "256", "--degree", "4", "--buckets", "8",
        ]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Figure 2" in output
        assert "exposed fraction" in output

    def test_dynamic_vecadd(self, capsys):
        assert main([
            "dynamic", "--config", "gf100", "--workload", "vecadd",
            "--buckets", "8",
        ]) == 0
        output = capsys.readouterr().out
        assert "vecadd" in output
