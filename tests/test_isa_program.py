"""Unit tests for operands, instructions, and program validation."""

import pytest

from repro.isa import CmpOp, Instruction, MemSpace, Opcode, Program, Unit, unit_for
from repro.isa.operands import Imm, Param, Pred, Reg, Special
from repro.utils.errors import AssemblyError


class TestOperands:
    def test_register_repr(self):
        assert repr(Reg(3)) == "r3"
        assert repr(Pred(1)) == "p1"

    def test_special_register_validation(self):
        assert repr(Special("tid")) == "%tid"
        with pytest.raises(ValueError):
            Special("bogus")

    def test_operands_are_hashable_value_objects(self):
        assert Reg(2) == Reg(2)
        assert len({Reg(2), Reg(2), Reg(3)}) == 2
        assert Imm(1.0) == Imm(1.0)
        assert Param("n") == Param("n")


class TestInstructionProperties:
    def test_unit_mapping(self):
        assert unit_for(Opcode.IADD) is Unit.SP
        assert unit_for(Opcode.FDIV) is Unit.SFU
        assert unit_for(Opcode.LD) is Unit.MEM
        assert unit_for(Opcode.BRA) is Unit.CTRL

    def test_every_opcode_has_a_unit(self):
        for opcode in Opcode:
            assert unit_for(opcode) in Unit

    def test_memory_predicates(self):
        load = Instruction(opcode=Opcode.LD, dst=Reg(0), srcs=(Reg(1),),
                           space=MemSpace.GLOBAL)
        store = Instruction(opcode=Opcode.ST, srcs=(Reg(1), Reg(2)),
                            space=MemSpace.GLOBAL)
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory and not store.is_load

    def test_register_read_write_sets(self):
        guard = (Pred(0), False)
        instruction = Instruction(opcode=Opcode.IADD, dst=Reg(2),
                                  srcs=(Reg(0), Reg(1)), guard=guard)
        assert instruction.reads_registers() == (Reg(0), Reg(1))
        assert instruction.reads_predicates() == (Pred(0),)
        assert instruction.writes_register() == Reg(2)
        assert instruction.writes_predicate() is None

    def test_setp_writes_predicate(self):
        instruction = Instruction(opcode=Opcode.SETP, dst=Pred(1),
                                  srcs=(Reg(0), Imm(1)), cmp=CmpOp.EQ)
        assert instruction.writes_predicate() == Pred(1)
        assert instruction.writes_register() is None

    def test_str_rendering(self):
        instruction = Instruction(
            opcode=Opcode.LD, dst=Reg(0), srcs=(Reg(1),),
            space=MemSpace.GLOBAL, offset=4, guard=(Pred(0), True),
            comment="load next pointer",
        )
        text = str(instruction)
        assert "@!p0" in text
        assert "ld.global" in text
        assert "load next pointer" in text


class TestProgramValidation:
    @staticmethod
    def make_program(instructions, **kwargs):
        defaults = dict(name="test", num_registers=4, num_predicates=2)
        defaults.update(kwargs)
        return Program(instructions=instructions, **defaults)

    def test_valid_program_passes(self):
        program = self.make_program([
            Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Imm(1),)),
            Instruction(opcode=Opcode.EXIT),
        ])
        program.validate()

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            self.make_program([]).validate()

    def test_missing_exit_rejected(self):
        program = self.make_program([
            Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Imm(1),)),
        ])
        with pytest.raises(AssemblyError):
            program.validate()

    def test_unpatched_branch_rejected(self):
        program = self.make_program([
            Instruction(opcode=Opcode.BRA),
            Instruction(opcode=Opcode.EXIT),
        ])
        with pytest.raises(AssemblyError):
            program.validate()

    def test_branch_target_out_of_range_rejected(self):
        program = self.make_program([
            Instruction(opcode=Opcode.BRA, target=99),
            Instruction(opcode=Opcode.EXIT),
        ])
        with pytest.raises(AssemblyError):
            program.validate()

    def test_guarded_branch_needs_reconvergence(self):
        program = self.make_program([
            Instruction(opcode=Opcode.BRA, target=1, guard=(Pred(0), False)),
            Instruction(opcode=Opcode.EXIT),
        ])
        with pytest.raises(AssemblyError):
            program.validate()

    def test_memory_without_space_rejected(self):
        program = self.make_program([
            Instruction(opcode=Opcode.LD, dst=Reg(0), srcs=(Reg(1),)),
            Instruction(opcode=Opcode.EXIT),
        ])
        with pytest.raises(AssemblyError):
            program.validate()

    def test_loads_and_stores_helpers(self):
        program = self.make_program([
            Instruction(opcode=Opcode.LD, dst=Reg(0), srcs=(Reg(1),),
                        space=MemSpace.GLOBAL),
            Instruction(opcode=Opcode.ST, srcs=(Reg(1), Reg(0)),
                        space=MemSpace.GLOBAL),
            Instruction(opcode=Opcode.EXIT),
        ])
        assert len(program.loads()) == 1
        assert len(program.stores()) == 1

    def test_pc_set_on_construction(self):
        program = self.make_program([
            Instruction(opcode=Opcode.NOP),
            Instruction(opcode=Opcode.EXIT),
        ])
        assert [i.pc for i in program.instructions] == [0, 1]
