"""Tests for the GPU configuration presets and the GPUConfig container."""

import dataclasses

import pytest

from repro.gpu import GPUConfig, available_configs, get_config
from repro.gpu.configs import (
    GENERATION_LABELS,
    TABLE_I_TARGETS,
    table_i_generations,
)
from repro.utils.errors import ConfigurationError
from tests.conftest import make_fast_config


class TestPresets:
    def test_all_presets_instantiate(self):
        for name in available_configs():
            config = get_config(name)
            assert config.name == name
            assert config.num_sms >= 1

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            get_config("gtx9000")

    def test_table_i_generations_have_targets_and_labels(self):
        for name in table_i_generations():
            assert name in TABLE_I_TARGETS
            assert name in GENERATION_LABELS

    def test_fermi_has_l1_and_l2_on_global_path(self):
        config = get_config("gf106")
        assert config.core.l1.enabled
        assert config.core.l1.cache_global
        assert config.partition.l2_enabled
        assert config.l1_bytes() is not None
        assert config.total_l2_bytes() > 0

    def test_kepler_l1_is_local_only(self):
        config = get_config("gk104")
        assert config.core.l1.enabled
        assert not config.core.l1.cache_global
        assert config.core.l1.cache_local
        assert config.core.l1.caches_space(is_local=True)
        assert not config.core.l1.caches_space(is_local=False)

    def test_maxwell_has_no_l1(self):
        config = get_config("gm107")
        assert not config.core.l1.enabled
        assert config.l1_bytes() is None
        assert config.partition.l2_enabled

    def test_tesla_has_no_caches_on_global_path(self):
        config = get_config("gt200")
        assert not config.core.l1.enabled
        assert not config.partition.l2_enabled
        assert config.total_l2_bytes() == 0

    def test_gf100_matches_fermi_latency_knobs(self):
        gf100 = get_config("gf100")
        gf106 = get_config("gf106")
        assert gf100.core.l1.hit_latency == gf106.core.l1.hit_latency
        assert gf100.partition.l2.hit_latency == gf106.partition.l2.hit_latency
        assert (gf100.partition.dram.service_pad
                == gf106.partition.dram.service_pad)

    def test_latency_ordering_follows_paper_trends(self):
        # Kepler and Maxwell DRAM pads are smaller than Fermi's (their
        # absolute DRAM latency is lower), and Maxwell is slower than
        # Kepler at every level — the paper's headline observation.
        kepler = get_config("gk104")
        maxwell = get_config("gm107")
        fermi = get_config("gf106")
        assert kepler.partition.l2.hit_latency < maxwell.partition.l2.hit_latency
        assert kepler.partition.dram.service_pad < maxwell.partition.dram.service_pad
        assert maxwell.partition.dram.service_pad < fermi.partition.dram.service_pad


class TestGPUConfigContainer:
    def test_replace_produces_modified_copy(self):
        config = make_fast_config()
        modified = config.replace(num_sms=7)
        assert modified.num_sms == 7
        assert config.num_sms == 2
        assert modified.core is config.core

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(name="bad", num_sms=0)
        with pytest.raises(ConfigurationError):
            GPUConfig(name="bad", global_memory_bytes=16)
        with pytest.raises(ConfigurationError):
            GPUConfig(name="bad", max_cycles=0)

    def test_dram_scheduler_override(self):
        config = make_fast_config()
        dram = dataclasses.replace(config.partition.dram, scheduler="fcfs")
        partition = dataclasses.replace(config.partition, dram=dram)
        modified = config.replace(partition=partition)
        assert modified.partition.dram.scheduler == "fcfs"

    def test_warp_scheduler_override(self):
        config = make_fast_config()
        core = dataclasses.replace(config.core, warp_scheduler="lrr")
        assert config.replace(core=core).core.warp_scheduler == "lrr"
