"""Tests for the plain-text reporting helpers."""

from repro.analysis import (
    STAGE_GLYPHS,
    breakdown_chart,
    comparison_table,
    exposure_chart,
    format_table,
    stacked_bar,
)
from repro.core.breakdown import compute_breakdown
from repro.core.exposure import compute_exposure
from repro.core.stages import STAGE_ORDER, Stage
from repro.core.tracker import LatencyTracker
from tests.test_core_breakdown_exposure import make_record


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[-1]
        assert len(lines) == 4

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_comparison_table_orders_columns(self):
        rows = [{"name": "a", "value": 1, "extra": "ignored"}]
        text = comparison_table("t", rows, ["value", "name"])
        header = text.splitlines()[1]
        assert header.index("value") < header.index("name")


class TestCharts:
    def test_stage_glyphs_unique(self):
        glyphs = list(STAGE_GLYPHS.values())
        assert len(glyphs) == len(set(glyphs)) == len(STAGE_ORDER)

    def test_stacked_bar_width(self):
        percentages = {stage: 0.0 for stage in Stage}
        percentages[Stage.SM_BASE] = 50.0
        percentages[Stage.FETCH_TO_SM] = 50.0
        bar = stacked_bar(percentages, width=40)
        assert len(bar) == 40
        assert bar.count(STAGE_GLYPHS[Stage.SM_BASE]) == 20

    def test_breakdown_chart_contains_buckets_and_legend(self):
        records = [make_record(100) for _ in range(4)] + [make_record(900)]
        result = compute_breakdown(records, num_buckets=4)
        chart = breakdown_chart(result, width=30)
        assert "legend" in chart
        assert "n=4" in chart
        assert "n=1" in chart

    def test_exposure_chart_marks_exposed_share(self):
        tracker = LatencyTracker()
        tracker.record_load(0, 0, 0, "global", 0, 100, 1, False)
        result = compute_exposure(tracker, num_buckets=2)
        chart = exposure_chart(result, width=20)
        assert "exposed=100.0%" in chart
        assert "#" * 20 in chart
