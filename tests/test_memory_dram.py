"""Unit tests for the DRAM channel, its timing, and its schedulers."""

import pytest

from repro.core.stages import Event
from repro.core.tracker import LatencyTracker
from repro.isa.opcodes import MemSpace
from repro.memory.address import AddressMapping
from repro.memory.dram import (
    DRAMTiming,
    DramChannel,
    FCFSScheduler,
    FRFCFSScheduler,
    create_scheduler,
)
from repro.memory.request import MemoryRequest
from repro.utils.errors import ConfigurationError


def make_channel(scheduler="frfcfs", **timing_overrides):
    timing_kwargs = dict(t_rcd=5, t_rp=5, t_cas=5, burst_cycles=2,
                         service_pad=0, queue_size=8, num_banks=2,
                         scheduler=scheduler, starvation_limit=0)
    timing_kwargs.update(timing_overrides)
    timing = DRAMTiming(**timing_kwargs)
    mapping = AddressMapping(num_partitions=1, partition_chunk=256,
                             row_bytes=512, num_banks=timing.num_banks)
    return DramChannel(0, timing, mapping, LatencyTracker()), mapping


def read_request(address):
    return MemoryRequest(address=address, size=128, is_write=False,
                         space=MemSpace.GLOBAL, sm_id=0)


def run_until_complete(channel, limit=1000):
    completed = []
    for cycle in range(limit):
        channel.cycle(cycle)
        while True:
            done = channel.pop_completed_read(cycle)
            if done is None:
                break
            completed.append((cycle, done))
    return completed


class TestTimingValidation:
    def test_latencies_by_row_state(self):
        timing = DRAMTiming(t_rcd=10, t_rp=8, t_cas=6)
        assert timing.row_hit_latency() == 6
        assert timing.row_closed_latency() == 16
        assert timing.row_conflict_latency() == 24

    def test_rejects_invalid_values(self):
        with pytest.raises(ConfigurationError):
            DRAMTiming(t_rcd=0)
        with pytest.raises(ConfigurationError):
            DRAMTiming(queue_size=0)
        with pytest.raises(ConfigurationError):
            DRAMTiming(scheduler="bogus")
        with pytest.raises(ConfigurationError):
            DRAMTiming(starvation_limit=-1)

    def test_scheduler_factory(self):
        assert isinstance(create_scheduler("fcfs"), FCFSScheduler)
        assert isinstance(create_scheduler("frfcfs"), FRFCFSScheduler)
        with pytest.raises(ConfigurationError):
            create_scheduler("unknown")


class TestChannelBehaviour:
    def test_queue_capacity(self):
        channel, _ = make_channel(queue_size=2)
        channel.enqueue(read_request(0), 0)
        channel.enqueue(read_request(128), 0)
        assert not channel.can_accept()
        with pytest.raises(RuntimeError):
            channel.enqueue(read_request(256), 0)

    def test_read_completes_and_records_timestamps(self):
        channel, _ = make_channel()
        request = read_request(0)
        channel.enqueue(request, 0)
        completed = run_until_complete(channel)
        assert len(completed) == 1
        assert Event.DRAM_Q_ARRIVE in request.timestamps
        assert Event.DRAM_SCHEDULED in request.timestamps
        assert Event.DRAM_DATA in request.timestamps
        assert (request.timestamps[Event.DRAM_DATA]
                > request.timestamps[Event.DRAM_SCHEDULED])

    def test_row_hit_faster_than_row_conflict(self):
        channel, mapping = make_channel()
        same_row = [read_request(0), read_request(128)]
        for request in same_row:
            channel.enqueue(request, 0)
        run_until_complete(channel)
        assert channel.stats["row_closed"] == 1
        assert channel.stats["row_hits"] == 1

        conflict_channel, _ = make_channel()
        # Same bank (bank 0), different rows: rows interleave across the 2
        # banks every 512 bytes, so 0 and 1024 share bank 0.
        conflict_channel.enqueue(read_request(0), 0)
        conflict_channel.enqueue(read_request(1024), 0)
        run_until_complete(conflict_channel)
        assert conflict_channel.stats["row_conflicts"] == 1

    def test_writes_complete_without_response(self):
        channel, _ = make_channel()
        write = MemoryRequest(address=0, size=128, is_write=True,
                              space=MemSpace.GLOBAL, sm_id=0)
        channel.enqueue(write, 0)
        completed = run_until_complete(channel)
        assert completed == []
        assert channel.stats["writes_completed"] == 1

    def test_service_pad_delays_response_not_bank(self):
        slow, _ = make_channel(service_pad=50)
        fast, _ = make_channel(service_pad=0)
        slow.enqueue(read_request(0), 0)
        fast.enqueue(read_request(0), 0)
        slow_done = run_until_complete(slow)[0][0]
        fast_done = run_until_complete(fast)[0][0]
        assert slow_done - fast_done == 50

    def test_bank_parallelism_beats_single_bank(self):
        # Two requests to different banks overlap; two to the same bank
        # (different rows) serialise.
        parallel, _ = make_channel()
        parallel.enqueue(read_request(0), 0)       # bank 0
        parallel.enqueue(read_request(512), 0)     # bank 1
        parallel_last = run_until_complete(parallel)[-1][0]

        serial, _ = make_channel()
        serial.enqueue(read_request(0), 0)         # bank 0 row 0
        serial.enqueue(read_request(1024), 0)      # bank 0 row 1
        serial_last = run_until_complete(serial)[-1][0]
        assert parallel_last < serial_last

    def test_next_event_time(self):
        channel, _ = make_channel()
        assert channel.next_event_time(0) is None
        channel.enqueue(read_request(0), 0)
        assert channel.next_event_time(0) == 1
        channel.cycle(0)
        assert channel.next_event_time(0) > 1

    def test_in_flight_accounting(self):
        channel, _ = make_channel()
        channel.enqueue(read_request(0), 0)
        assert channel.in_flight() == 1
        run_until_complete(channel)
        assert channel.in_flight() == 0


class TestSchedulers:
    def test_fcfs_picks_oldest_ready(self):
        channel, mapping = make_channel(scheduler="fcfs")
        scheduler = channel.scheduler
        queue = [(0, 0, read_request(1024)), (1, 1, read_request(0))]
        index = scheduler.select(queue, channel.banks, mapping, now=10)
        assert index == 0

    def test_frfcfs_prefers_row_hit(self):
        channel, mapping = make_channel(scheduler="frfcfs")
        channel.banks[0].open_row = mapping.row_of(1024)
        queue = [(0, 0, read_request(0)), (1, 1, read_request(1024))]
        index = channel.scheduler.select(queue, channel.banks, mapping, now=10)
        assert index == 1

    def test_frfcfs_starvation_cap_promotes_oldest(self):
        scheduler = FRFCFSScheduler(starvation_limit=100)
        channel, mapping = make_channel(scheduler="frfcfs")
        channel.banks[0].open_row = mapping.row_of(1024)
        queue = [(0, 0, read_request(0)), (150, 1, read_request(1024))]
        # The row-miss request has waited 200 cycles at now=200: it wins
        # despite the row hit sitting behind it.
        index = scheduler.select(queue, channel.banks, mapping, now=200)
        assert index == 0

    def test_busy_banks_are_skipped(self):
        channel, mapping = make_channel(scheduler="fcfs")
        channel.banks[0].busy_until = 100
        queue = [(0, 0, read_request(0)), (1, 1, read_request(512))]
        index = channel.scheduler.select(queue, channel.banks, mapping, now=10)
        assert index == 1

    def test_no_ready_bank_returns_none(self):
        channel, mapping = make_channel(scheduler="frfcfs")
        for bank in channel.banks:
            bank.busy_until = 100
        queue = [(0, 0, read_request(0))]
        assert channel.scheduler.select(queue, channel.banks, mapping, 10) is None

    def test_fcfs_total_order_differs_from_frfcfs(self):
        # FR-FCFS reorders a row hit ahead of an older row conflict; FCFS
        # must not.
        def run(scheduler_name):
            channel, _ = make_channel(scheduler=scheduler_name)
            first = read_request(1024)     # bank 0, row 1
            second = read_request(0)       # bank 0, row 0
            third = read_request(1152)     # bank 0, row 1 (hit after first)
            channel.enqueue(first, 0)
            channel.enqueue(second, 0)
            channel.enqueue(third, 0)
            completed = run_until_complete(channel)
            return [request.address for _, request in completed]

        assert run("fcfs") == [1024, 0, 1152]
        assert run("frfcfs") == [1024, 1152, 0]
