"""Unit tests for the scoreboard, warp schedulers, and warp state."""

import numpy as np
import pytest

from repro.isa import KernelBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import CmpOp, Opcode
from repro.isa.operands import Pred, Reg
from repro.simt.scheduler import (
    GreedyThenOldestScheduler,
    LooseRoundRobinScheduler,
    available_warp_schedulers,
    create_warp_scheduler,
)
from repro.simt.scoreboard import Scoreboard
from repro.simt.warp import Warp
from repro.utils.errors import ConfigurationError, SimulationError


def simple_program():
    builder = KernelBuilder("noop")
    builder.nop()
    return builder.build()


def make_warp(warp_id=0, valid_lanes=32):
    valid = np.zeros(32, dtype=bool)
    valid[:valid_lanes] = True
    return Warp(warp_id=warp_id, warp_in_cta=warp_id, cta_id=0, sm_id=0,
                program=simple_program(), warp_size=32, valid_mask=valid)


class TestScoreboard:
    def test_reserve_creates_raw_hazard(self):
        scoreboard = Scoreboard()
        producer = Instruction(opcode=Opcode.IADD, dst=Reg(1),
                               srcs=(Reg(0), Reg(0)))
        consumer = Instruction(opcode=Opcode.IADD, dst=Reg(2),
                               srcs=(Reg(1), Reg(0)))
        scoreboard.reserve(producer)
        assert scoreboard.has_hazard(consumer)
        scoreboard.release(producer)
        assert not scoreboard.has_hazard(consumer)

    def test_waw_hazard_detected(self):
        scoreboard = Scoreboard()
        first = Instruction(opcode=Opcode.MOV, dst=Reg(3), srcs=(Reg(0),))
        second = Instruction(opcode=Opcode.MOV, dst=Reg(3), srcs=(Reg(1),))
        scoreboard.reserve(first)
        assert scoreboard.has_hazard(second)

    def test_guard_predicate_creates_hazard(self):
        scoreboard = Scoreboard()
        setp = Instruction(opcode=Opcode.SETP, dst=Pred(0),
                           srcs=(Reg(0), Reg(1)), cmp=CmpOp.EQ)
        guarded = Instruction(opcode=Opcode.MOV, dst=Reg(2), srcs=(Reg(0),),
                              guard=(Pred(0), False))
        scoreboard.reserve(setp)
        assert scoreboard.has_hazard(guarded)

    def test_release_without_reserve_raises(self):
        scoreboard = Scoreboard()
        instruction = Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Reg(1),))
        with pytest.raises(SimulationError):
            scoreboard.release(instruction)

    def test_pending_writes_and_clear(self):
        scoreboard = Scoreboard()
        scoreboard.reserve(Instruction(opcode=Opcode.MOV, dst=Reg(0),
                                       srcs=(Reg(1),)))
        scoreboard.reserve(Instruction(opcode=Opcode.SETP, dst=Pred(0),
                                       srcs=(Reg(1), Reg(2)), cmp=CmpOp.EQ))
        assert scoreboard.pending_writes() == 2
        scoreboard.clear()
        assert scoreboard.pending_writes() == 0

    def test_no_dest_instruction_never_reserves(self):
        scoreboard = Scoreboard()
        store = Instruction(opcode=Opcode.ST, srcs=(Reg(0), Reg(1)))
        scoreboard.reserve(store)
        assert scoreboard.pending_writes() == 0


class TestWarpSchedulers:
    def test_registry(self):
        assert set(available_warp_schedulers()) == {"lrr", "gto"}
        assert isinstance(create_warp_scheduler("lrr", 0),
                          LooseRoundRobinScheduler)
        assert isinstance(create_warp_scheduler("gto", 0),
                          GreedyThenOldestScheduler)
        with pytest.raises(ConfigurationError):
            create_warp_scheduler("bogus", 0)

    def test_empty_ready_list_returns_none(self):
        assert LooseRoundRobinScheduler(0).select([], 0) is None
        assert GreedyThenOldestScheduler(0).select([], 0) is None

    def test_lrr_rotates_through_warps(self):
        scheduler = LooseRoundRobinScheduler(0)
        warps = [make_warp(warp_id) for warp_id in range(3)]
        picked = []
        for cycle in range(6):
            warp = scheduler.select(warps, cycle)
            scheduler.notify_issue(warp, cycle)
            picked.append(warp.warp_id)
        assert picked == [0, 1, 2, 0, 1, 2]

    def test_lrr_skips_unready_warps(self):
        scheduler = LooseRoundRobinScheduler(0)
        warps = [make_warp(warp_id) for warp_id in range(3)]
        scheduler.notify_issue(warps[0], 0)
        warp = scheduler.select([warps[0], warps[2]], 1)
        assert warp.warp_id == 2

    def test_gto_sticks_with_greedy_warp(self):
        scheduler = GreedyThenOldestScheduler(0)
        warps = [make_warp(warp_id) for warp_id in range(3)]
        first = scheduler.select(warps, 0)
        scheduler.notify_issue(first, 0)
        again = scheduler.select(warps, 1)
        assert again is first

    def test_gto_falls_back_to_oldest(self):
        scheduler = GreedyThenOldestScheduler(0)
        warps = [make_warp(warp_id) for warp_id in range(3)]
        warps[0].launch_order = 5
        warps[1].launch_order = 1
        warps[2].launch_order = 9
        scheduler.notify_issue(warps[2], 0)
        # greedy warp (2) stalls; oldest by launch order is warp 1
        warp = scheduler.select([warps[0], warps[1]], 1)
        assert warp.warp_id == 1


class TestWarpState:
    def test_partial_warp_valid_mask(self):
        warp = make_warp(valid_lanes=20)
        assert warp.active_mask.sum() == 20
        assert not warp.done

    def test_empty_warp_is_done(self):
        warp = make_warp(valid_lanes=0)
        assert warp.done

    def test_exit_lanes_progressively_finishes(self):
        warp = make_warp(valid_lanes=32)
        half = np.zeros(32, dtype=bool)
        half[:16] = True
        warp.exit_lanes(half)
        assert not warp.done
        assert warp.active_mask.sum() == 16
        warp.exit_lanes(~half)
        assert warp.done

    def test_finish_retires_everything(self):
        warp = make_warp()
        warp.finish()
        assert warp.done
        assert warp.next_instruction() is None

    def test_thread_indices_offset_by_warp_position(self):
        warp = Warp(warp_id=3, warp_in_cta=2, cta_id=1, sm_id=0,
                    program=simple_program(), warp_size=32,
                    valid_mask=np.ones(32, dtype=bool))
        tids = warp.thread_indices(block_dim=128)
        assert tids[0] == 64
        assert tids[31] == 95

    def test_next_instruction_none_past_end(self):
        warp = make_warp()
        warp.stack.advance(100)
        assert warp.next_instruction() is None
