"""Integration tests for the static latency analysis (Section II / Table I).

These run the pointer-chase measurement through the full simulator, so they
are the slowest tests in the suite; problem sizes are kept small.
"""

import pytest

from repro.core.calibrate import calibrate_config, calibration_report
from repro.core.hierarchy import expected_level_count, infer_hierarchy
from repro.core.pointer_chase import (
    default_footprints,
    measure_chase_latency,
    regime_footprints,
    sweep_chase_latency,
)
from repro.core.static import measure_generation, reproduce_table_i
from repro.gpu import get_config
from repro.gpu.configs import TABLE_I_TARGETS
from repro.utils.errors import ConfigurationError

#: Accesses per measurement in tests (smaller than the benchmark default).
FAST_ACCESSES = 128


class TestChaseMeasurement:
    def test_l1_regime_measures_l1_latency(self):
        config = get_config("gf106")
        measurement = measure_chase_latency(config, footprint_bytes=4 * 1024,
                                            stride_bytes=128,
                                            measure_accesses=FAST_ACCESSES)
        assert measurement.cycles_per_access == pytest.approx(45, rel=0.08)

    def test_dram_regime_slower_than_l2_regime(self):
        config = get_config("gf106")
        regimes = regime_footprints(config)
        l2 = measure_chase_latency(config, regimes["l2"], 128,
                                   measure_accesses=FAST_ACCESSES)
        dram = measure_chase_latency(config, regimes["dram"], 128,
                                     measure_accesses=FAST_ACCESSES,
                                     warm_accesses=FAST_ACCESSES)
        assert dram.cycles_per_access > l2.cycles_per_access > 45

    def test_local_space_chase_runs(self):
        config = get_config("gk104")
        measurement = measure_chase_latency(config, footprint_bytes=4 * 1024,
                                            stride_bytes=128, space="local",
                                            measure_accesses=FAST_ACCESSES)
        assert measurement.space == "local"
        assert measurement.cycles_per_access == pytest.approx(30, rel=0.1)

    def test_invalid_parameters(self):
        config = get_config("gf106")
        with pytest.raises(ConfigurationError):
            measure_chase_latency(config, 1024, 128, space="texture")
        with pytest.raises(ConfigurationError):
            measure_chase_latency(config, 64, 128)

    def test_regime_footprints_follow_capacities(self, generation_config):
        regimes = regime_footprints(generation_config)
        l1_bytes = generation_config.l1_bytes()
        l2_bytes = generation_config.total_l2_bytes()
        if l1_bytes:
            assert regimes["l1"] < l1_bytes
        else:
            assert regimes["l1"] is None
        if l2_bytes:
            assert (l1_bytes or 0) < regimes["l2"] < l2_bytes
            assert regimes["dram"] > l2_bytes
        assert regimes["dram"] is not None

    def test_default_footprints_span_hierarchy(self, generation_config):
        footprints = default_footprints(generation_config)
        assert footprints == sorted(footprints)
        assert footprints[0] <= 4 * 1024
        l2_bytes = generation_config.total_l2_bytes()
        if l2_bytes:
            assert footprints[-1] >= 2 * l2_bytes


class TestTableIReproduction:
    @pytest.mark.parametrize("name", ["gf106", "gk104", "gm107", "gt200"])
    def test_generation_matches_paper_targets(self, name):
        config = get_config(name)
        generation = measure_generation(config, measure_accesses=FAST_ACCESSES)
        targets = TABLE_I_TARGETS[name]
        for level, target in targets.items():
            measured = generation.measured[level]
            if target is None:
                assert measured is None
            else:
                assert measured == pytest.approx(target, rel=0.05), (
                    f"{name} {level}: measured {measured}, paper {target}"
                )
                assert generation.relative_error(level) < 0.05

    def test_table_format_contains_all_generations(self):
        result = reproduce_table_i(config_names=["gt200"],
                                   measure_accesses=64)
        text = result.format_table()
        assert "Tesla" in text
        assert "DRAM" in text
        assert "x" in text                     # missing levels marked
        assert result.row("gt200").paper["dram"] == 440
        with pytest.raises(KeyError):
            result.row("gf999")


class TestHierarchyInferenceOnSimulator:
    def test_fermi_shows_three_plateaus(self):
        config = get_config("gf106")
        footprints = [4 * 1024, 8 * 1024, 64 * 1024, 96 * 1024,
                      256 * 1024, 384 * 1024]
        surface = sweep_chase_latency(config, footprints, [128],
                                      measure_accesses=96)
        estimate = infer_hierarchy(surface, stride_bytes=128)
        assert estimate.num_levels == expected_level_count(True, True)
        latencies = estimate.latencies()
        assert latencies[0] == pytest.approx(45, rel=0.1)
        assert latencies[1] == pytest.approx(310, rel=0.1)
        assert latencies[2] == pytest.approx(685, rel=0.1)

    def test_tesla_shows_single_plateau(self):
        config = get_config("gt200")
        footprints = [4 * 1024, 32 * 1024, 128 * 1024]
        surface = sweep_chase_latency(config, footprints, [128],
                                      measure_accesses=96)
        estimate = infer_hierarchy(surface, stride_bytes=128)
        assert estimate.num_levels == 1
        assert estimate.latencies()[0] == pytest.approx(440, rel=0.1)


class TestCalibration:
    def test_calibration_converges_on_detuned_config(self):
        import dataclasses

        base = get_config("gk104")
        detuned_l2 = dataclasses.replace(base.partition.l2, hit_latency=40)
        detuned_dram = dataclasses.replace(base.partition.dram, service_pad=20)
        partition = dataclasses.replace(base.partition, l2=detuned_l2,
                                        dram=detuned_dram)
        detuned = base.replace(partition=partition)
        result = calibrate_config(detuned, iterations=2,
                                  measure_accesses=FAST_ACCESSES)
        assert result.max_relative_error() < 0.05
        report = calibration_report(result)
        assert "target 175" in report
        assert "dram_pad" in report

    def test_calibration_requires_targets_for_unknown_config(self):
        from tests.conftest import make_fast_config

        with pytest.raises(ConfigurationError):
            calibrate_config(make_fast_config(name="mystery"))
