"""SM-level behaviour: occupancy limits, scheduler assignment, statistics,
exposure bookkeeping, and memory-request metadata."""

import pytest

from repro.core.stages import Event
from repro.gpu import GPU
from repro.isa import KernelBuilder, MemSpace
from repro.memory.request import MemoryRequest
from repro.simt.core import KernelLaunch
from repro.utils.errors import SimulationError
from tests.conftest import make_fast_config


def trivial_program(shared_bytes=0):
    builder = KernelBuilder("trivial")
    if shared_bytes:
        builder.shared_alloc(shared_bytes)
    builder.nop()
    return builder.build()


def make_launch(program=None, grid_dim=4, block_dim=64, **params):
    return KernelLaunch(program=program or trivial_program(),
                        grid_dim=grid_dim, block_dim=block_dim, params=params)


class TestKernelLaunchValidation:
    def test_geometry_must_be_positive(self):
        with pytest.raises(SimulationError):
            make_launch(grid_dim=0)
        with pytest.raises(SimulationError):
            make_launch(block_dim=0)

    def test_missing_params_detected(self):
        builder = KernelBuilder("needs_n")
        builder.mov(builder.reg(), builder.param("n"))
        with pytest.raises(SimulationError):
            make_launch(program=builder.build())

    def test_total_threads(self):
        assert make_launch(grid_dim=3, block_dim=64).total_threads == 192


class TestOccupancyLimits:
    def test_cta_limit(self, fast_gpu):
        sm = fast_gpu.sms[0]
        launch = make_launch(block_dim=32)
        limit = fast_gpu.config.core.max_ctas
        for cta_id in range(limit):
            assert sm.can_accept_cta(launch)
            sm.launch_cta(cta_id, launch, now=0)
        assert not sm.can_accept_cta(launch)
        with pytest.raises(SimulationError):
            sm.launch_cta(99, launch, now=0)

    def test_warp_limit(self, fast_gpu):
        sm = fast_gpu.sms[0]
        # Each CTA of 1024 threads is 32 warps; max_warps is 48, so only
        # one such CTA fits even though the CTA limit is 8.
        launch = make_launch(block_dim=1024)
        sm.launch_cta(0, launch, now=0)
        assert not sm.can_accept_cta(launch)

    def test_shared_memory_limit(self, fast_gpu):
        sm = fast_gpu.sms[0]
        shared_bytes = fast_gpu.config.core.shared_mem_bytes // 2 + 1
        launch = make_launch(program=trivial_program(shared_bytes),
                             block_dim=32)
        sm.launch_cta(0, launch, now=0)
        assert sm.shared_bytes_in_use() == shared_bytes
        assert not sm.can_accept_cta(launch)

    def test_warps_per_cta_rounds_up(self, fast_gpu):
        sm = fast_gpu.sms[0]
        assert sm.warps_per_cta(make_launch(block_dim=33)) == 2
        assert sm.warps_per_cta(make_launch(block_dim=32)) == 1

    def test_partial_warp_gets_partial_valid_mask(self, fast_gpu):
        sm = fast_gpu.sms[0]
        sm.launch_cta(0, make_launch(block_dim=40), now=0)
        warps = sm.resident_warps()
        assert len(warps) == 2
        assert int(warps[0].valid_mask.sum()) == 32
        assert int(warps[1].valid_mask.sum()) == 8

    def test_retirement_frees_resources(self, fast_gpu):
        builder = KernelBuilder("nothing")
        builder.nop()
        fast_gpu.launch(builder.build(), grid_dim=6, block_dim=64)
        for sm in fast_gpu.sms:
            assert sm.resident_warps() == []
            assert sm.shared_bytes_in_use() == 0
        retired = sum(len(sm.retired_ctas) for sm in fast_gpu.sms)
        assert retired == 6


class TestSchedulerAssignment:
    def test_warps_partitioned_across_schedulers(self, fast_gpu):
        sm = fast_gpu.sms[0]
        sm.launch_cta(0, make_launch(block_dim=256), now=0)
        all_warps = {warp.warp_id for warp in sm.resident_warps()}
        per_scheduler = [
            {warp.warp_id for warp in sm._scheduler_warps(index)}
            for index in range(fast_gpu.config.core.num_schedulers)
        ]
        assert set().union(*per_scheduler) == all_warps
        for first in range(len(per_scheduler)):
            for second in range(first + 1, len(per_scheduler)):
                assert not (per_scheduler[first] & per_scheduler[second])


class TestIssueStatsAndExposure:
    def test_issue_cycles_reported_to_tracker(self, fast_gpu):
        builder = KernelBuilder("counted")
        value = builder.reg()
        builder.mov(value, 1)
        builder.iadd(value, value, 2)
        result = fast_gpu.launch(builder.build(), grid_dim=1, block_dim=32)
        tracker = fast_gpu.tracker
        busy = tracker.busy_cycles_in(0, result.start_cycle,
                                      result.end_cycle + 1)
        assert busy >= 3                       # mov, iadd, exit at least
        issued = fast_gpu.sms[0].stats["instructions_issued"]
        assert issued >= 3
        assert fast_gpu.sms[0].stats["active_cycles"] <= result.cycles

    def test_branch_and_memory_stats_counted(self, fast_gpu):
        builder = KernelBuilder("mixed")
        value, address = builder.reg(), builder.reg()
        flag = builder.pred()
        out = builder.param("out")
        builder.setp(flag, "lt", builder.tid, 16)
        with builder.if_(flag):
            builder.mov(value, 7)
        builder.imad(address, builder.gtid, 4, out)
        builder.st_global(address, value)
        out_dev = fast_gpu.allocate(4 * 32)
        fast_gpu.launch(builder.build(), grid_dim=1, block_dim=32,
                        params={"out": out_dev})
        stats = fast_gpu.sms[0].stats
        assert stats["branches"] >= 1
        assert stats["memory_instructions"] >= 1


class TestMemoryRequestMetadata:
    def test_defaults_and_identity(self):
        first = MemoryRequest(address=0x100, size=128, is_write=False,
                              space=MemSpace.GLOBAL, sm_id=0)
        second = MemoryRequest(address=0x100, size=128, is_write=False,
                               space=MemSpace.GLOBAL, sm_id=0)
        assert first.request_id != second.request_id
        assert first != second                   # identity equality
        assert first.is_read and not first.is_write
        assert first.line_address(128) == 0x100
        assert MemoryRequest(address=0x1a4, size=4, is_write=True,
                             space=MemSpace.LOCAL,
                             sm_id=1).line_address(128) == 0x180

    def test_repr_mentions_kind_and_address(self):
        request = MemoryRequest(address=0xbeef, size=128, is_write=True,
                                space=MemSpace.GLOBAL, sm_id=3)
        text = repr(request)
        assert "W" in text and "beef" in text

    def test_timestamps_start_empty(self):
        request = MemoryRequest(address=0, size=128, is_write=False,
                                space=MemSpace.GLOBAL, sm_id=0)
        assert request.timestamps == {}
        request.timestamps[Event.ISSUE] = 5
        assert request.timestamps[Event.ISSUE] == 5


class TestFastForward:
    def test_single_thread_kernel_skips_idle_cycles(self):
        # A strictly dependent pointer-ish chain on one thread leaves the
        # GPU idle most cycles; the run must finish in far fewer *wall*
        # steps than simulated cycles would suggest, which shows up as the
        # simulated cycle count being much larger than the issue count.
        gpu = GPU(make_fast_config())
        builder = KernelBuilder("dependent_chain")
        value, address = builder.reg(), builder.reg()
        out = builder.param("out")
        builder.mov(address, out)
        for _ in range(20):
            builder.ld_global(value, address)
            builder.iadd(address, value, 0)
        builder.st_global(out, value)
        out_dev = gpu.allocate(256)
        gpu.global_memory.write_word(out_dev, out_dev)   # self-loop pointer
        result = gpu.launch(builder.build(), grid_dim=1, block_dim=1,
                            params={"out": out_dev})
        assert result.cycles > 20 * 10
        assert result.instructions < 100
        assert gpu.sms[0].stats["active_cycles"] < result.cycles / 3
