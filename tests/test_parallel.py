"""Tests for the process-parallel experiment executor.

The load-bearing property is determinism: a grid run sharded across N
worker processes must serialize byte-identically to the same grid run
serially, regardless of worker count or completion order.  The rest
covers the cache-merge contract, worker-failure surfacing (both Python
exceptions and hard process death), session-local configs crossing the
process boundary, and the CLI ``--jobs`` plumbing.
"""

import json
import multiprocessing
import os

import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    CompletedRun,
    Experiment,
    ParallelExecutor,
    RunSet,
    Session,
)
from repro.utils.errors import ExperimentError
from repro.workloads import register_workload, unregister_workload
from repro.workloads.base import LaunchSpec, Workload
from repro.workloads.vecadd import build_vecadd_kernel

#: An 8-point ablation grid (2 configs x 4 problem sizes) of cheap runs.
GRID = Experiment.grid(
    kind="dynamic",
    configs=["gf100", "gt200"],
    workloads=["vecadd"],
    params={"n": [96, 128, 160, 192], "buckets": 4},
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


class DyingWorkload(Workload):
    """A workload that kills its whole process: simulates a worker crash."""

    name = "die_test"

    def build_program(self):
        return build_vecadd_kernel()

    def prepare(self, gpu) -> LaunchSpec:
        os._exit(3)

    def verify(self, gpu) -> bool:  # pragma: no cover - never runs
        return True


class TestSpecHash:
    def test_stable_and_content_addressed(self):
        a = Experiment.dynamic("gf100", "vecadd", n=128)
        b = Experiment.dynamic("gf100", "vecadd", n=128)
        c = Experiment.dynamic("gf100", "vecadd", n=256)
        assert a.spec_hash() == b.spec_hash()
        assert a.spec_hash() != c.spec_hash()
        assert len(a.spec_hash()) == 16


class TestRunSetAssembly:
    def _record(self):
        return Session().run(Experiment.dynamic("gf100", "vecadd", n=96,
                                                buckets=4))

    def test_from_indexed_restores_submission_order(self):
        record = self._record()
        runs = RunSet.from_indexed([(2, record), (0, record), (1, record)])
        assert len(runs) == 3

    def test_from_indexed_rejects_gaps_and_duplicates(self):
        record = self._record()
        with pytest.raises(ExperimentError):
            RunSet.from_indexed([(0, record), (2, record)])
        with pytest.raises(ExperimentError):
            RunSet.from_indexed([(0, record), (0, record)])

    def test_merge_concatenates(self):
        record = self._record()
        merged = RunSet.merge(RunSet(records=[record]),
                              RunSet(records=[record, record]))
        assert len(merged) == 3


class TestParallelDeterminism:
    def test_grid_jobs4_byte_identical_to_serial(self):
        serial = Session().run_all(GRID, jobs=1)
        parallel = Session().run_all(GRID, jobs=4)
        assert len(parallel) == len(GRID) >= 8
        assert parallel.to_json() == serial.to_json()

    def test_mixed_kind_specs_byte_identical(self):
        specs = [
            Experiment.dynamic("gf100", "vecadd", n=96, buckets=4),
            Experiment.static(configs=["gt200"], accesses=48),
            Experiment.sweep("gt200", accesses=48,
                             footprints=[4096, 16384]),
        ]
        serial = Session().run_all(specs, jobs=1)
        parallel = Session().run_all(specs, jobs=3)
        assert parallel.to_json() == serial.to_json()

    def test_parallel_records_carry_analysis_artifacts(self):
        runs = Session().run_all([GRID[0]], jobs=2)
        # Light artifacts stream back from the workers, so parallel
        # records support the same analysis accessors as cached serial
        # records; only the live simulator state stays behind.
        assert runs[0].breakdown is not None
        assert runs[0].exposure is not None
        assert runs[0].gpu is None


class TestParallelCache:
    def test_duplicate_specs_simulated_once(self):
        session = Session()
        runs = session.run_all([GRID[0], GRID[0], GRID[1]], jobs=2)
        info = session.cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 1
        assert runs[0].to_json() == runs[1].to_json()

    def test_worker_results_merge_into_parent_cache(self):
        session = Session()
        session.run_all(GRID[:4], jobs=2)
        assert session.cache_info() == {"hits": 0, "misses": 4, "size": 4}
        record = session.run(GRID[0])
        assert session.cache_info()["hits"] == 1
        assert record.payload["breakdown"]["total_requests"] > 0

    def test_parent_cache_hits_skip_the_pool(self):
        session = Session()
        first = session.run(GRID[0])
        runs = session.run_all(GRID[:2], jobs=2)
        # The already-cached spec is served locally (same record object).
        assert runs[0].payload is first.payload
        assert session.cache_info()["misses"] == 2

    def test_counters_match_serial_when_cache_disabled(self):
        serial = Session(cache=False)
        serial.run_all([GRID[0], GRID[0]], jobs=1)
        parallel = Session(cache=False)
        parallel.run_all([GRID[0], GRID[0]], jobs=2)
        assert parallel.cache_info() == serial.cache_info() == \
            {"hits": 0, "misses": 2, "size": 0}

    def test_progress_callback_sees_every_record(self):
        seen = []
        session = Session()
        session.run_all(GRID[:3], jobs=2,
                        progress=lambda done, total, record:
                        seen.append((done, total, record.kind)))
        assert [done for done, _total, _kind in seen] == [1, 2, 3]
        assert all(total == 3 for _done, total, _kind in seen)


class TestWorkerFailures:
    def test_worker_exception_surfaces_with_spec(self):
        spec = Experiment.dynamic("gf100", "vecadd", bogus=3)
        with pytest.raises(ExperimentError, match="worker failed") as info:
            Session().run_all([spec], jobs=2)
        assert "vecadd" in str(info.value)
        assert "bogus" in str(info.value)

    @pytest.mark.skipif(not HAS_FORK,
                        reason="needs fork to see runtime registration")
    def test_worker_process_death_surfaces(self):
        register_workload(DyingWorkload)
        try:
            spec = Experiment.dynamic("gf100", "die_test")
            with pytest.raises(ExperimentError,
                               match="worker process died"):
                Session().run_all([spec], jobs=2)
        finally:
            unregister_workload("die_test")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            ParallelExecutor(jobs=0)


class TestParallelExecutorDirect:
    def test_imap_streams_completed_runs(self):
        with ParallelExecutor(jobs=2) as executor:
            completed = list(executor.imap(GRID[:3]))
        assert len(completed) == 3
        assert all(isinstance(done, CompletedRun) for done in completed)
        assert sorted(done.index for done in completed) == [0, 1, 2]
        hashes = {done.spec_hash for done in completed}
        assert hashes == {spec.spec_hash() for spec in GRID[:3]}

    def test_run_orders_by_submission(self):
        with ParallelExecutor(jobs=2) as executor:
            runs = executor.run(GRID[:3])
        expected = Session().run_all(GRID[:3], jobs=1)
        assert runs.to_json() == expected.to_json()

    def test_accepts_plain_dict_specs(self):
        with ParallelExecutor(jobs=2) as executor:
            runs = executor.run([spec.to_dict() for spec in GRID[:2]])
        assert len(runs) == 2

    def test_empty_input(self):
        with ParallelExecutor(jobs=2) as executor:
            assert len(executor.run([])) == 0

    def test_session_local_configs_cross_process(self, fast_config):
        session = Session()
        name = session.add_config(fast_config, name="fastpar")
        specs = [Experiment.dynamic(name, "vecadd", n=n, buckets=4)
                 for n in (96, 128)]
        parallel = session.run_all(specs, jobs=2)
        serial = Session(configs={"fastpar": fast_config}).run_all(
            specs, jobs=1)
        assert parallel.to_json() == serial.to_json()
        assert parallel[0].payload["config"] == fast_config.name


class TestCliJobsPlumbing:
    def test_parser_defaults_and_parsing(self):
        args = build_parser().parse_args(["run", "spec.json"])
        assert args.jobs == 1
        args = build_parser().parse_args(["run", "spec.json", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(
            ["sweep", "--config", "gt200", "--config", "gf106",
             "--jobs", "2"])
        assert args.jobs == 2
        assert args.config == ["gt200", "gf106"]

    def test_run_jobs_output_identical_to_serial(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([e.to_dict() for e in GRID[:4]]))
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        assert main(["run", str(spec), "--output", str(serial_out)]) == 0
        serial_text = capsys.readouterr().out
        assert main(["run", str(spec), "--jobs", "2",
                     "--output", str(parallel_out)]) == 0
        captured = capsys.readouterr()
        assert captured.out.replace(str(parallel_out),
                                    str(serial_out)) == serial_text
        assert parallel_out.read_bytes() == serial_out.read_bytes()
        # Completion progress streams to stderr, not stdout.
        assert "[4/4]" in captured.err

    def test_sweep_multi_config_jobs(self, tmp_path, capsys):
        output = tmp_path / "sweeps.json"
        assert main([
            "sweep", "--config", "gt200", "--config", "gf106",
            "--accesses", "48", "--footprints", "4096", "16384",
            "--jobs", "2", "--output", str(output),
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("detected 1 level(s)") == 2
        loaded = RunSet.load(output)
        assert [record.experiment["configs"] for record in loaded] == \
            [["gt200"], ["gf106"]]

    def test_worker_failure_reports_clean_cli_error(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            {"kind": "dynamic", "configs": ["gf100"], "workload": "vecadd",
             "params": {"bogus": 1}}))
        assert main(["run", str(spec), "--jobs", "2"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: worker failed")
        assert "bogus" in err
