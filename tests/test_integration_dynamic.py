"""Integration tests for the dynamic latency analysis (Section III).

A small BFS run on the GF100-like configuration must reproduce the paper's
qualitative findings: short-latency requests are pure "SM Base" (L1 hits),
queueing components dominate long-latency requests, and a large share of
BFS load latency is exposed rather than hidden.
"""

import pytest

from repro.core.breakdown import breakdown_from_tracker
from repro.core.exposure import compute_exposure
from repro.core.stages import Event, Stage
from repro.gpu import GPU, fermi_gf100
from repro.workloads import BFSWorkload, MatMulWorkload


@pytest.fixture(scope="module")
def bfs_run():
    """One shared BFS run on the GF100 configuration (module scoped: slow)."""
    gpu = GPU(fermi_gf100())
    workload = BFSWorkload(num_nodes=1024, avg_degree=8, block_dim=128, seed=5)
    results = workload.run(gpu)
    assert workload.verify(gpu)
    return gpu, workload, results


class TestRequestLifetimes:
    def test_requests_tracked_and_monotonic(self, bfs_run):
        gpu, _, _ = bfs_run
        records = gpu.tracker.read_requests()
        assert len(records) > 1000
        for record in records[:200]:
            times = list(record.timestamps.values())
            assert times == sorted(times)
            assert record.latency > 0
            assert sum(record.breakdown().values()) == record.latency

    def test_hits_and_misses_both_present(self, bfs_run):
        gpu, _, _ = bfs_run
        records = gpu.tracker.read_requests()
        hits = [r for r in records if Event.ICNT_INJECT not in r.timestamps]
        misses = [r for r in records if Event.DRAM_DATA in r.timestamps]
        assert hits and misses

    def test_load_instruction_records_cover_requests(self, bfs_run):
        gpu, _, _ = bfs_run
        loads = gpu.tracker.global_loads()
        assert loads
        assert all(load.latency > 0 for load in loads)
        assert sum(load.num_requests for load in loads) >= len(loads)


class TestFigure1Shape:
    def test_short_latency_buckets_are_sm_base(self, bfs_run):
        gpu, _, _ = bfs_run
        result = breakdown_from_tracker(gpu.tracker, num_buckets=24)
        first = result.non_empty_buckets()[0]
        assert first.percentages()[Stage.SM_BASE] > 95.0

    def test_long_latency_buckets_are_not_sm_base(self, bfs_run):
        gpu, _, _ = bfs_run
        result = breakdown_from_tracker(gpu.tracker, num_buckets=24)
        buckets = result.non_empty_buckets()
        last_quarter = buckets[3 * len(buckets) // 4:]
        total = sum(bucket.total_cycles for bucket in last_quarter)
        sm_base = sum(bucket.stage_cycles[Stage.SM_BASE]
                      for bucket in last_quarter)
        # Aggregated over the slowest quarter of the latency range, the
        # memory-pipeline stages beyond the SM dominate the lifetime.
        assert sm_base / total < 0.6

    def test_queueing_grows_with_latency(self, bfs_run):
        gpu, _, _ = bfs_run
        result = breakdown_from_tracker(gpu.tracker, num_buckets=24)
        buckets = result.non_empty_buckets()
        queue_stages = (Stage.L1_TO_ICNT, Stage.ROP_TO_L2Q, Stage.L2Q_TO_DRAMQ,
                        Stage.DRAM_Q_TO_SCH)

        def queue_share(bucket):
            percentages = bucket.percentages()
            return sum(percentages[stage] for stage in queue_stages)

        first = buckets[0]
        longest = buckets[-1]
        assert queue_share(longest) > queue_share(first)

    def test_counts_conserved(self, bfs_run):
        gpu, _, _ = bfs_run
        result = breakdown_from_tracker(gpu.tracker, num_buckets=24)
        assert (sum(bucket.count for bucket in result.buckets)
                == result.total_requests)


class TestFigure2Shape:
    def test_exposure_is_significant_for_bfs(self, bfs_run):
        gpu, _, _ = bfs_run
        result = compute_exposure(gpu.tracker, num_buckets=16)
        assert result.total_loads > 500
        # The paper: "more than 50% for most of the global memory load
        # instructions" and "sometimes close to 100%".
        assert result.overall_exposed_fraction > 0.5
        assert result.fraction_of_loads_mostly_exposed(50.0) > 0.5
        assert max(bucket.exposed_percent
                   for bucket in result.non_empty_buckets()) > 85.0

    def test_exposure_bounded(self, bfs_run):
        gpu, _, _ = bfs_run
        result = compute_exposure(gpu.tracker, num_buckets=16)
        for bucket in result.non_empty_buckets():
            assert 0.0 <= bucket.exposed_percent <= 100.0


class TestWorkloadContrast:
    def test_matmul_hides_more_latency_than_bfs(self, bfs_run):
        gpu_bfs, _, _ = bfs_run
        bfs_exposure = compute_exposure(gpu_bfs.tracker).overall_exposed_fraction

        gpu_mm = GPU(fermi_gf100())
        workload = MatMulWorkload(n=32, block_dim=128)
        workload.run_verified(gpu_mm)
        matmul_exposure = compute_exposure(gpu_mm.tracker).overall_exposed_fraction
        assert matmul_exposure < bfs_exposure
