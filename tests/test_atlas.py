"""Tests for the latency-tolerance atlas (2-D microbench x transform sweep)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    atlas_cycles_table,
    atlas_metrics_table,
    atlas_slope_chart,
    format_atlas_report,
)
from repro.cli import main
from repro.experiments import Session
from repro.sensitivity import (
    AtlasResult,
    LatencyToleranceAtlas,
    TransformChain,
    parse_axis_token,
)
from repro.utils.errors import ExperimentError
from tests.conftest import make_fast_config

#: Tiny constant parameters shared by the atlas tests: a fast-config
#: sweep with a minimal grid stays well under a second per point.
TINY = {"iters": 8, "ctas": 1, "warps_per_cta": 1, "footprint": 2048}


def tiny_atlas(**overrides) -> LatencyToleranceAtlas:
    kwargs = dict(config="fast", axis="ilp", values=(1, 2),
                  transform="scale_dram_latency", scales=(1.0, 2.0),
                  params=TINY)
    kwargs.update(overrides)
    return LatencyToleranceAtlas(**kwargs)


def fast_session() -> Session:
    session = Session(cache=False)
    session.add_config(make_fast_config())
    return session


class TestAtlasSpec:
    def test_requires_config_axis_values(self):
        with pytest.raises(ExperimentError, match="config"):
            LatencyToleranceAtlas(config="", axis="ilp", values=(1,))
        with pytest.raises(ExperimentError, match="axis"):
            LatencyToleranceAtlas(config="fast", axis="", values=(1,))
        with pytest.raises(ExperimentError, match="value"):
            LatencyToleranceAtlas(config="fast", axis="ilp", values=())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            LatencyToleranceAtlas(config="fast", axis="ilp", values=(1, 1))

    def test_axis_cannot_be_fixed_param(self):
        with pytest.raises(ExperimentError, match="fixed"):
            LatencyToleranceAtlas(config="fast", axis="ilp", values=(1, 2),
                                  params={"ilp": 4})

    def test_unknown_axis_lists_valid_ones(self):
        atlas = tiny_atlas(axis="bogus")
        with pytest.raises(ExperimentError) as excinfo:
            atlas.validate_axis()
        assert "bogus" in str(excinfo.value)
        assert "ilp" in str(excinfo.value)

    def test_transform_token_normalised(self):
        atlas = tiny_atlas(transform="scale_dram_latency:1")
        assert isinstance(atlas.transform, TransformChain)

    def test_dict_round_trip(self):
        atlas = tiny_atlas()
        rebuilt = LatencyToleranceAtlas.from_dict(atlas.to_dict())
        assert rebuilt == atlas
        assert rebuilt.to_json() == atlas.to_json()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError, match="unknown atlas"):
            LatencyToleranceAtlas.from_dict(
                {"config": "fast", "axis": "ilp", "values": [1], "bogus": 1})

    def test_describe_mentions_axes(self):
        text = tiny_atlas().describe()
        assert "ilp" in text
        assert "scale_dram_latency" in text


class TestAtlasRun:
    @pytest.fixture(scope="class")
    def result(self):
        return tiny_atlas().run(session=fast_session())

    def test_one_row_per_axis_value(self, result):
        assert [row.value for row in result.rows] == [1, 2]

    def test_rows_carry_fitted_curves(self, result):
        for row in result.rows:
            assert len(row.curve.points) == 2
            assert row.curve.metrics.baseline_cycles > 0
            assert row.curve.metrics.slope_cycles_per_injected is not None

    def test_higher_ilp_is_less_latency_sensitive(self, result):
        slopes = [slope for _value, slope in result.slopes()]
        assert slopes[0] > slopes[1] > 0

    def test_row_lookup(self, result):
        assert result.row(2).value == 2
        with pytest.raises(ExperimentError, match="no atlas row"):
            result.row(17)

    def test_parallel_jobs_byte_identical(self, result):
        parallel = tiny_atlas().run(session=fast_session(), jobs=2)
        assert parallel.to_json() == result.to_json()

    def test_result_json_round_trip(self, result, tmp_path):
        rebuilt = AtlasResult.from_json(result.to_json())
        assert rebuilt.to_json() == result.to_json()
        path = tmp_path / "atlas.json"
        result.save(path)
        assert AtlasResult.load(path).to_json() == result.to_json()

    def test_shared_session_dedupes_repeat_rows(self):
        session = fast_session()
        session.cache_enabled = True
        tiny_atlas().run(session=session)
        before = session.cache_misses
        tiny_atlas().run(session=session)
        assert session.cache_misses == before  # all points cache hits

    def test_report_sections(self, result):
        report = format_atlas_report(result)
        assert "Latency-tolerance atlas" in report
        assert "Total cycles per sweep point" in report
        assert "Fitted tolerance metrics" in report
        assert "slope cyc/injected" in atlas_metrics_table(result)
        assert "x1" in atlas_cycles_table(result)
        assert "#" in atlas_slope_chart(result)

    def test_no_injected_latency_axis_renders(self):
        result = tiny_atlas(transform="scale_mshr_count",
                            scales=(1.0, 2.0)).run(session=fast_session())
        chart = atlas_slope_chart(result)
        assert "no latency injected" in chart
        report = format_atlas_report(result)
        assert "scale_mshr_count" in report


class TestAxisTokenParsing:
    def test_parses_ints_and_floats(self):
        assert parse_axis_token("ilp=1,2,4") == ("ilp", [1, 2, 4])
        assert parse_axis_token("divergence=0.0,0.5") == (
            "divergence", [0.0, 0.5])

    @pytest.mark.parametrize("token", ["ilp", "=1,2", "ilp=", "ilp=a,b"])
    def test_malformed_tokens_rejected(self, token):
        with pytest.raises(ExperimentError):
            parse_axis_token(token)


class TestAtlasCLI:
    def test_atlas_runs_small(self, capsys):
        assert main(["atlas", "--config", "gf106", "--axis", "ilp=1,2",
                     "--scales", "1,2", "--param", "iters=8",
                     "--param", "ctas=1", "--param", "warps_per_cta=1",
                     "--param", "footprint=2048"]) == 0
        output = capsys.readouterr().out
        assert "Latency-tolerance atlas" in output
        assert "Fitted tolerance metrics" in output

    def test_atlas_output_round_trips(self, tmp_path, capsys):
        out = tmp_path / "atlas.json"
        assert main(["atlas", "--config", "gf106", "--axis", "ilp=1,2",
                     "--scales", "1,2", "--param", "iters=8",
                     "--param", "ctas=1", "--param", "warps_per_cta=1",
                     "--param", "footprint=2048",
                     "--output", str(out)]) == 0
        loaded = AtlasResult.load(out)
        assert [row.value for row in loaded.rows] == [1, 2]

    def test_unknown_axis_clean_error(self, capsys):
        assert main(["atlas", "--axis", "bogus=1,2"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "bogus" in err and "valid axes" in err

    def test_malformed_axis_clean_error(self, capsys):
        assert main(["atlas", "--axis", "ilp=a,b"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a number" in err

    def test_unknown_transform_clean_error(self, capsys):
        assert main(["atlas", "--axis", "ilp=1,2",
                     "--transform", "bogus_transform"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "bogus_transform" in err

    def test_bad_axis_value_clean_error(self, capsys):
        # Values parse but violate the spec's validation: no traceback.
        assert main(["atlas", "--axis", "ilp=0,1", "--scales", "1,2"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "ilp" in err

    def test_smoke_json_parses(self, capsys):
        # The CLI path the CI smoke job drives, end to end.
        assert main(["smoke", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total_runs"] == (report["workload_count"]
                                        * report["config_count"]
                                        * report["core_count"])
