"""Unit tests for the kernel builder and program assembly."""

import pytest

from repro.isa import CmpOp, KernelBuilder, MemSpace, Opcode
from repro.isa.operands import Imm, Param, Pred, Reg, Special
from repro.utils.errors import AssemblyError


class TestRegisterAllocation:
    def test_registers_are_sequential(self):
        builder = KernelBuilder("k")
        r0, r1 = builder.reg(), builder.reg()
        assert (r0.index, r1.index) == (0, 1)

    def test_bulk_allocation(self):
        builder = KernelBuilder("k")
        regs = builder.reg(3)
        assert [r.index for r in regs] == [0, 1, 2]

    def test_predicates_are_sequential(self):
        builder = KernelBuilder("k")
        p0, p1 = builder.pred(), builder.pred()
        assert (p0.index, p1.index) == (0, 1)

    def test_param_declared_once(self):
        builder = KernelBuilder("k")
        builder.param("n")
        builder.param("n")
        builder.mov(builder.reg(), builder.param("n"))
        program = builder.build()
        assert program.param_names == ("n",)

    def test_shared_and_local_allocation_offsets(self):
        builder = KernelBuilder("k")
        assert builder.shared_alloc(64) == 0
        assert builder.shared_alloc(32) == 64
        assert builder.local_alloc(16) == 0
        assert builder.local_alloc(16) == 16


class TestInstructionEmission:
    def test_operand_coercion_of_numbers(self):
        builder = KernelBuilder("k")
        reg = builder.reg()
        instruction = builder.iadd(reg, 1, 2.5)
        assert isinstance(instruction.srcs[0], Imm)
        assert instruction.srcs[1].value == 2.5

    def test_invalid_operand_rejected(self):
        builder = KernelBuilder("k")
        with pytest.raises(AssemblyError):
            builder.mov(builder.reg(), "not an operand")

    def test_setp_accepts_string_comparison(self):
        builder = KernelBuilder("k")
        instruction = builder.setp(builder.pred(), "ge", builder.reg(), 4)
        assert instruction.cmp is CmpOp.GE

    def test_guard_kwarg_sets_predicate(self):
        builder = KernelBuilder("k")
        pred = builder.pred()
        instruction = builder.mov(builder.reg(), 1, pred=pred, negate=True)
        assert instruction.guard == (pred, True)

    def test_guard_requires_predicate_register(self):
        builder = KernelBuilder("k")
        with pytest.raises(AssemblyError):
            builder.mov(builder.reg(), 1, pred=builder.reg())

    def test_memory_instructions_carry_space_and_offset(self):
        builder = KernelBuilder("k")
        reg = builder.reg()
        load = builder.ld_global(reg, reg, offset=8)
        store = builder.st_shared(reg, reg)
        builder.shared_alloc(4)
        assert load.space is MemSpace.GLOBAL and load.offset == 8
        assert store.space is MemSpace.SHARED

    def test_special_registers_available(self):
        builder = KernelBuilder("k")
        for special in (builder.tid, builder.ctaid, builder.ntid,
                        builder.nctaid, builder.laneid, builder.gtid):
            assert isinstance(special, Special)


class TestControlFlow:
    def test_if_branch_targets_endif(self):
        builder = KernelBuilder("k")
        pred = builder.pred()
        reg = builder.reg()
        with builder.if_(pred):
            builder.mov(reg, 1)
        builder.mov(reg, 2)
        program = builder.build()
        branch = program[0]
        assert branch.opcode is Opcode.BRA
        assert branch.guard == (pred, True)
        assert branch.target == 2          # skips the body
        assert branch.reconv == 2

    def test_if_negate_inverts_guard(self):
        builder = KernelBuilder("k")
        pred = builder.pred()
        with builder.if_(pred, negate=True):
            builder.mov(builder.reg(), 1)
        program = builder.build()
        assert program[0].guard == (pred, False)

    def test_if_else_structure(self):
        builder = KernelBuilder("k")
        pred = builder.pred()
        reg = builder.reg()
        with builder.if_else(pred) as otherwise:
            builder.mov(reg, 1)
            otherwise()
            builder.mov(reg, 2)
        program = builder.build()
        entry = program[0]
        jump_over_else = program[2]
        assert entry.target == 3              # else body
        assert entry.reconv == 4              # end of the construct
        assert jump_over_else.opcode is Opcode.BRA
        assert jump_over_else.target == 4

    def test_if_else_requires_otherwise_call(self):
        builder = KernelBuilder("k")
        pred = builder.pred()
        with pytest.raises(AssemblyError):
            with builder.if_else(pred):
                builder.mov(builder.reg(), 1)

    def test_if_else_rejects_double_otherwise(self):
        builder = KernelBuilder("k")
        pred = builder.pred()
        with pytest.raises(AssemblyError):
            with builder.if_else(pred) as otherwise:
                otherwise()
                otherwise()

    def test_while_loop_back_edge_and_exit(self):
        builder = KernelBuilder("k")
        pred = builder.pred()
        counter = builder.reg()
        builder.mov(counter, 0)
        with builder.while_loop() as loop:
            builder.setp(pred, "ge", counter, 4)
            loop.break_if(pred)
            builder.iadd(counter, counter, 1)
        program = builder.build()
        break_branch = program[2]
        back_edge = program[4]
        assert break_branch.target == 5 and break_branch.reconv == 5
        assert back_edge.target == 1 and back_edge.guard is None

    def test_for_range_emits_counter_update(self):
        builder = KernelBuilder("k")
        counter = builder.reg()
        with builder.for_range(counter, 0, 8):
            builder.nop()
        program = builder.build()
        opcodes = [instruction.opcode for instruction in program.instructions]
        assert Opcode.SETP in opcodes
        assert opcodes.count(Opcode.BRA) == 2
        assert Opcode.IADD in opcodes

    def test_for_range_zero_step_rejected(self):
        builder = KernelBuilder("k")
        with pytest.raises(AssemblyError):
            with builder.for_range(builder.reg(), 0, 4, step=0):
                pass

    def test_unplaced_label_detected(self):
        builder = KernelBuilder("k")
        label = builder.new_label("dangling")
        builder._emit_branch(label)
        with pytest.raises(AssemblyError):
            builder.build()

    def test_label_cannot_be_placed_twice(self):
        builder = KernelBuilder("k")
        label = builder.new_label()
        builder.place_label(label)
        with pytest.raises(AssemblyError):
            builder.place_label(label)


class TestProgramAssembly:
    def test_exit_appended_automatically(self):
        builder = KernelBuilder("k")
        builder.mov(builder.reg(), 1)
        program = builder.build()
        assert program.instructions[-1].opcode is Opcode.EXIT

    def test_explicit_exit_not_duplicated(self):
        builder = KernelBuilder("k")
        builder.mov(builder.reg(), 1)
        builder.exit_()
        program = builder.build()
        exits = [i for i in program.instructions if i.opcode is Opcode.EXIT]
        assert len(exits) == 1

    def test_pc_assigned_sequentially(self):
        builder = KernelBuilder("k")
        builder.mov(builder.reg(), 1)
        builder.mov(builder.reg(), 2)
        program = builder.build()
        assert [instruction.pc for instruction in program.instructions] == [0, 1, 2]

    def test_register_counts_recorded(self):
        builder = KernelBuilder("k")
        builder.reg(5)
        builder.pred(2)
        builder.nop()
        program = builder.build()
        assert program.num_registers == 5
        assert program.num_predicates == 2

    def test_disassembly_mentions_kernel_name(self):
        builder = KernelBuilder("mykernel")
        builder.nop()
        listing = builder.build().disassemble()
        assert "mykernel" in listing
        assert "exit" in listing

    def test_shared_access_without_allocation_rejected(self):
        builder = KernelBuilder("k")
        reg = builder.reg()
        builder.ld_shared(reg, 0)
        with pytest.raises(AssemblyError):
            builder.build()

    def test_undeclared_param_rejected(self):
        builder = KernelBuilder("k")
        reg = builder.reg()
        builder.mov(reg, Param("undeclared"))
        with pytest.raises(AssemblyError):
            builder.build()

    def test_out_of_range_register_rejected(self):
        builder = KernelBuilder("k")
        builder.mov(Reg(7), 1)
        with pytest.raises(AssemblyError):
            builder.build()

    def test_out_of_range_predicate_rejected(self):
        builder = KernelBuilder("k")
        builder.setp(Pred(3), "eq", 1, 1)
        with pytest.raises(AssemblyError):
            builder.build()
