"""Tests for the latency-sensitivity subsystem (repro.sensitivity)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.experiments import Experiment, Session
from repro.gpu import get_config
from repro.sensitivity import (
    INTERCONNECT_HOP_CYCLES,
    SensitivityPoint,
    SensitivityResult,
    SensitivityStudy,
    Transform,
    TransformChain,
    available_transforms,
    chain_from_label,
    chain_label,
    fit_tolerance,
    injected_latency,
    nominal_dram_latency,
    ols_slope,
    parse_transform,
    register_transform,
)
from repro.sensitivity.transforms import TRANSFORM_REGISTRY
from repro.utils.errors import ConfigurationError, ExperimentError

BUILTIN_TRANSFORMS = [
    "add_interconnect_hops",
    "scale_dram_latency",
    "scale_l2_hit_latency",
    "scale_max_warps",
    "scale_mshr_count",
]

#: Strategy for transform values that survive repr/parse round trips and
#: keep every builtin transform applicable to the gf106 preset.
transform_values = st.floats(min_value=0.25, max_value=16.0,
                             allow_nan=False, allow_infinity=False)
transform_strategy = st.builds(
    Transform,
    name=st.sampled_from(BUILTIN_TRANSFORMS),
    value=transform_values,
)
chain_strategy = st.builds(
    TransformChain,
    transforms=st.lists(transform_strategy, min_size=0,
                        max_size=3).map(tuple),
)


class TestConfigDerive:
    def test_nested_replace_leaves_original_untouched(self):
        base = get_config("gf106")
        derived = base.derive({"partition.dram.service_pad": 10,
                               "core.max_warps": 24})
        assert derived.partition.dram.service_pad == 10
        assert derived.core.max_warps == 24
        assert base.partition.dram.service_pad != 10
        assert base.core.max_warps == 48
        # Untouched sub-configuration is structurally preserved.
        assert derived.partition.l2 == base.partition.l2

    def test_unknown_field_raises(self):
        base = get_config("gf106")
        with pytest.raises(ConfigurationError, match="no field"):
            base.derive({"partition.dram.nonexistent": 1})
        with pytest.raises(ConfigurationError, match="no field"):
            base.derive({"bogus": 1})

    def test_path_through_none_component_raises(self):
        gt200 = get_config("gt200")  # no L2 on the global path
        with pytest.raises(ConfigurationError, match="None"):
            gt200.derive({"partition.l2.hit_latency": 50})

    def test_validation_reruns_on_derivation(self):
        base = get_config("gf106")
        with pytest.raises(ConfigurationError):
            base.derive({"partition.dram.t_rcd": 0})
        with pytest.raises(ConfigurationError):
            base.derive({"core.l1.mshr_entries": 0})
        with pytest.raises(ConfigurationError):
            base.derive({"partition.l2.mshr_entries": 0})
        with pytest.raises(ConfigurationError, match="num_schedulers"):
            base.derive({"core.max_warps": 1})


class TestTransforms:
    def test_builtins_registered(self):
        assert available_transforms() == BUILTIN_TRANSFORMS

    def test_scale_dram_latency(self):
        base = get_config("gf106")
        derived = Transform("scale_dram_latency", 2.0).apply(base)
        dram = base.partition.dram
        assert derived.partition.dram.t_rcd == 2 * dram.t_rcd
        assert derived.partition.dram.t_rp == 2 * dram.t_rp
        assert derived.partition.dram.t_cas == 2 * dram.t_cas
        assert derived.partition.dram.service_pad == 2 * dram.service_pad
        # Fractional down-scaling clamps timing fields to legal minima.
        tiny = Transform("scale_dram_latency", 0.0001).apply(base)
        assert tiny.partition.dram.t_rcd == 1
        assert tiny.partition.dram.service_pad == 0

    def test_scale_l2_hit_latency(self):
        base = get_config("gf106")
        derived = Transform("scale_l2_hit_latency", 3.0).apply(base)
        assert (derived.partition.l2.hit_latency
                == 3 * base.partition.l2.hit_latency)

    def test_scale_l2_hit_latency_requires_l2(self):
        with pytest.raises(ConfigurationError, match="no L2"):
            Transform("scale_l2_hit_latency", 2.0).apply(get_config("gt200"))

    def test_add_interconnect_hops(self):
        base = get_config("gf106")
        derived = Transform("add_interconnect_hops", 3).apply(base)
        assert (derived.interconnect.latency
                == base.interconnect.latency + 3 * INTERCONNECT_HOP_CYCLES)
        assert Transform("add_interconnect_hops", 0).apply(base) == base

    def test_scale_mshr_count(self):
        base = get_config("gf106")
        derived = Transform("scale_mshr_count", 0.5).apply(base)
        assert derived.core.l1.mshr_entries == base.core.l1.mshr_entries // 2
        assert (derived.partition.l2.mshr_entries
                == base.partition.l2.mshr_entries // 2)
        # No L2: only the L1 MSHRs scale, and nothing crashes.
        gt200 = Transform("scale_mshr_count", 0.5).apply(get_config("gt200"))
        assert gt200.core.l1.mshr_entries == 16

    def test_scale_max_warps(self):
        base = get_config("gf106")
        assert Transform("scale_max_warps", 0.5).apply(base).core.max_warps == 24

    def test_resource_transforms_raise_cleanly_at_zero(self):
        base = get_config("gf106")
        with pytest.raises(ConfigurationError):
            Transform("scale_mshr_count", 0.0).apply(base)
        with pytest.raises(ConfigurationError):
            Transform("scale_max_warps", 0.0).apply(base)
        # Below the scheduler count is as invalid as zero.
        with pytest.raises(ConfigurationError, match="num_schedulers"):
            Transform("scale_max_warps", 0.02).apply(base)

    def test_unknown_transform_rejected(self):
        with pytest.raises(ExperimentError, match="unknown config transform"):
            Transform("scale_flux_capacitor", 2.0)

    def test_bad_values_rejected(self):
        with pytest.raises(ExperimentError):
            Transform("scale_dram_latency", -1.0)
        with pytest.raises(ExperimentError):
            Transform("scale_dram_latency", float("nan"))
        with pytest.raises(ExperimentError):
            Transform("scale_dram_latency", float("inf"))
        # Sub-half hop counts round to zero hops: a valid no-op.
        base = get_config("gf106")
        assert Transform("add_interconnect_hops", 0.4).apply(base) == base

    def test_identity_flags(self):
        assert Transform("scale_dram_latency", 1.0).is_identity
        assert not Transform("scale_dram_latency", 2.0).is_identity
        assert Transform("add_interconnect_hops", 0.0).is_identity
        assert not Transform("add_interconnect_hops", 1.0).is_identity

    def test_register_transform_plugin(self):
        @register_transform(name="test_double_sms", identity=1.0)
        def double_sms(config, value):
            """Double the SM count (test plugin)."""
            return config.derive({"num_sms": int(config.num_sms * value)})

        try:
            derived = Transform("test_double_sms", 2.0).apply(
                get_config("gf106"))
            assert derived.num_sms == 8
            assert "test_double_sms" in available_transforms()
        finally:
            TRANSFORM_REGISTRY.unregister("test_double_sms")


class TestTransformChain:
    def test_compose_left_to_right(self):
        base = get_config("gf106")
        chain = TransformChain.parse(
            "scale_dram_latency:2+add_interconnect_hops:2")
        derived = chain.apply(base)
        assert derived.partition.dram.t_rcd == 2 * base.partition.dram.t_rcd
        assert (derived.interconnect.latency
                == base.interconnect.latency + 2 * INTERCONNECT_HOP_CYCLES)

    def test_at_scales_every_member(self):
        chain = TransformChain.parse("scale_dram_latency+scale_mshr_count:0.5")
        scaled = chain.at(2.0)
        assert [t.value for t in scaled] == [2.0, 1.0]

    def test_identity_scale(self):
        assert TransformChain.parse("scale_dram_latency").identity_scale() == 1.0
        assert TransformChain.parse(
            "add_interconnect_hops").identity_scale() == 0.0
        assert TransformChain.parse("scale_max_warps:0.125").identity_scale() == 8.0
        mixed = TransformChain.parse(
            "scale_dram_latency+add_interconnect_hops")
        assert mixed.identity_scale() is None

    def test_parse_rejects_garbage(self):
        for token in ("", "+", ":2", "scale_dram_latency:x"):
            with pytest.raises(ExperimentError):
                TransformChain.parse(token)

    def test_parse_defaults_value(self):
        assert parse_transform("scale_dram_latency") == Transform(
            "scale_dram_latency", 1.0)

    def test_parse_values_with_exponent_signs(self):
        # A '+' inside a value (float repr exponent, or user-typed
        # scientific notation) is not a member separator.
        chain = TransformChain((Transform("add_interconnect_hops", 1e16),
                                Transform("scale_dram_latency", 2.0)))
        assert TransformChain.parse(chain.token()) == chain
        parsed = TransformChain.parse(
            "scale_dram_latency:1e+2+add_interconnect_hops:2")
        assert [t.value for t in parsed] == [100.0, 2.0]

    @given(chain_strategy)
    @settings(max_examples=60, deadline=None)
    def test_token_and_json_round_trip(self, chain):
        assert TransformChain.from_json(chain.to_json()) == chain
        if len(chain):
            assert TransformChain.parse(chain.token()) == chain

    @given(chain_strategy)
    @settings(max_examples=60, deadline=None)
    def test_chain_rides_through_experiment_specs(self, chain):
        # The sweep runner carries the chain in the experiment label;
        # a JSON round trip of the spec must preserve it exactly.
        experiment = Experiment.dynamic("gf106", "vecadd",
                                        label=chain_label(chain), n=256)
        restored = Experiment.from_json(experiment.to_json())
        assert restored == experiment
        assert chain_from_label(restored.label) == chain

    def test_chain_from_label_ignores_foreign_labels(self):
        assert chain_from_label(None) is None
        assert chain_from_label("my ablation") is None
        assert chain_from_label(chain_label(TransformChain())) == (
            TransformChain())


class TestNominalLatency:
    def test_monotone_in_perturbed_knobs(self):
        base = get_config("gf106")
        for token in ("scale_dram_latency:2", "scale_l2_hit_latency:2",
                      "add_interconnect_hops:2"):
            derived = TransformChain.parse(token).apply(base)
            assert injected_latency(base, derived) > 0, token

    def test_resource_transforms_inject_nothing(self):
        base = get_config("gf106")
        for token in ("scale_mshr_count:0.5", "scale_max_warps:0.5"):
            derived = TransformChain.parse(token).apply(base)
            assert injected_latency(base, derived) == 0, token

    def test_l2_less_config_skips_l2_term(self):
        gt200 = get_config("gt200")
        assert nominal_dram_latency(gt200) > 0
        derived = TransformChain.parse("scale_dram_latency:2").apply(gt200)
        assert injected_latency(gt200, derived) > 0


class TestMetrics:
    @staticmethod
    def point(scale, cycles, injected, transform="t", exposed=0.5):
        return SensitivityPoint(scale=scale, config="c",
                                transform=transform,
                                injected_latency=injected, cycles=cycles,
                                exposed_fraction=exposed)

    def test_ols_slope(self):
        assert ols_slope([1, 2, 3], [2, 4, 6]) == pytest.approx(2.0)
        assert ols_slope([1, 1, 1], [2, 4, 6]) is None
        assert ols_slope([1], [2]) is None
        with pytest.raises(ExperimentError):
            ols_slope([1, 2], [1])

    def test_fully_tolerant_curve(self):
        # Runtime never moves: tolerance 1 everywhere, no half point.
        points = [self.point(1.0, 1000, 0, transform=""),
                  self.point(2.0, 1000, 500),
                  self.point(4.0, 1000, 1500)]
        metrics = fit_tolerance(points, base_nominal_latency=500)
        assert metrics.baseline_cycles == 1000
        assert metrics.slope_cycles_per_injected == pytest.approx(0.0)
        assert dict(metrics.tolerance_curve)[2.0] == pytest.approx(1.0)
        assert metrics.half_tolerance_scale is None

    def test_latency_bound_curve_crosses_half_immediately(self):
        # Runtime tracks injected latency 1:1 with the nominal estimate:
        # tolerance 0 beyond the baseline.
        points = [self.point(1.0, 1000, 0, transform="")]
        for scale in (2.0, 4.0):
            injected = int(500 * (scale - 1))
            worst = 1000 * (500 + injected) / 500
            points.append(self.point(scale, int(worst), injected))
        metrics = fit_tolerance(points, base_nominal_latency=500)
        assert dict(metrics.tolerance_curve)[2.0] == pytest.approx(0.0)
        assert metrics.half_tolerance_scale == pytest.approx(1.5)
        assert metrics.half_tolerance_injected == pytest.approx(250.0)

    def test_half_tolerance_interpolates_between_points(self):
        points = [self.point(1.0, 1000, 0, transform=""),
                  # worst = 3000; tolerance (3000-1500)/2000 = 0.75
                  self.point(2.0, 1500, 1000),
                  # worst = 5000; tolerance (5000-4000)/4000 = 0.25
                  self.point(4.0, 4000, 2000)]
        metrics = fit_tolerance(points, base_nominal_latency=500)
        assert metrics.half_tolerance_scale == pytest.approx(3.0)

    def test_baseline_is_the_unperturbed_point(self):
        # For axes injecting no latency the baseline is the point with
        # the empty transform token, wherever it sorts.
        points = [self.point(1.0, 2000, 0),
                  self.point(8.0, 1000, 0, transform="")]
        metrics = fit_tolerance(points, base_nominal_latency=500)
        assert metrics.baseline_cycles == 1000
        assert metrics.tolerance_curve == ()
        assert metrics.slope_cycles_per_injected is None
        assert metrics.half_tolerance_scale is None

    def test_no_points_rejected(self):
        with pytest.raises(ExperimentError):
            fit_tolerance([], base_nominal_latency=500)

    def test_metrics_round_trip(self):
        points = [self.point(1.0, 1000, 0, transform=""),
                  self.point(2.0, 1500, 500)]
        metrics = fit_tolerance(points, base_nominal_latency=500)
        from repro.sensitivity import ToleranceMetrics
        assert ToleranceMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict()))) == metrics


class TestStudySpec:
    def test_requires_axes_and_scales(self):
        with pytest.raises(ExperimentError):
            SensitivityStudy(config="gf106", workload="bfs", transforms=())
        with pytest.raises(ExperimentError):
            SensitivityStudy(config="gf106", workload="bfs",
                             transforms=("scale_dram_latency",), scales=())
        with pytest.raises(ExperimentError, match="duplicate"):
            SensitivityStudy(config="gf106", workload="bfs",
                             transforms=("scale_dram_latency",),
                             scales=(1, 2, 2))
        with pytest.raises(ExperimentError):
            SensitivityStudy(config="", workload="bfs",
                             transforms=("scale_dram_latency",))

    def test_accepts_names_tokens_and_chains(self):
        study = SensitivityStudy(
            config="gf106", workload="bfs",
            transforms=("scale_dram_latency",
                        "scale_mshr_count:0.5",
                        TransformChain.parse("add_interconnect_hops")),
        )
        assert all(isinstance(chain, TransformChain)
                   for chain in study.transforms)

    @given(st.lists(st.sampled_from(BUILTIN_TRANSFORMS), min_size=1,
                    max_size=3, unique=True),
           st.lists(transform_values, min_size=1, max_size=4,
                    unique=True))
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip(self, names, scales):
        study = SensitivityStudy(
            config="gf106", workload="bfs", transforms=tuple(names),
            scales=tuple(scales), params={"num_nodes": 256}, label="x")
        assert SensitivityStudy.from_json(study.to_json()) == study

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError, match="unknown"):
            SensitivityStudy.from_dict({"config": "gf106",
                                        "workload": "bfs",
                                        "transforms": [[]],
                                        "bogus": 1})


@pytest.fixture(scope="module")
def small_study():
    return SensitivityStudy(
        config="gf106", workload="vecadd",
        transforms=("scale_dram_latency", "scale_max_warps:0.25"),
        scales=(1.0, 2.0, 4.0), params={"n": 256},
    )


@pytest.fixture(scope="module")
def small_result(small_study):
    return small_study.run(session=Session())


class TestStudyRun:
    def test_one_curve_per_axis_with_baseline(self, small_study,
                                              small_result):
        assert len(small_result.curves) == len(small_study.transforms)
        dram = small_result.curve("scale_dram_latency")
        assert [point.scale for point in dram.points] == [1.0, 2.0, 4.0]
        assert dram.points[0].transform == ""
        assert dram.points[0].config == "gf106"
        assert dram.points[1].config == "gf106@scale_dram_latency:2.0"
        # Warp axis: member value 0.25 puts the baseline at scale 4.
        warps = small_result.curve("scale_max_warps")
        assert [point.scale for point in warps.points] == [1.0, 2.0, 4.0]
        assert warps.points[-1].transform == ""

    def test_injected_latency_monotone_on_dram_axis(self, small_result):
        dram = small_result.curve("scale_dram_latency")
        injected = [point.injected_latency for point in dram.points]
        assert injected[0] == 0
        assert injected == sorted(injected)
        assert injected[-1] > 0

    def test_cycles_monotone_on_dram_axis(self, small_result):
        dram = small_result.curve("scale_dram_latency")
        cycles = [point.cycles for point in dram.points]
        assert cycles == sorted(cycles)
        assert cycles[0] > 0

    def test_metrics_present(self, small_result):
        metrics = small_result.curve("scale_dram_latency").metrics
        assert metrics.slope_cycles_per_scale > 0
        assert metrics.slope_cycles_per_injected > 0
        assert len(metrics.exposed_fraction_curve) == 3
        warp_metrics = small_result.curve("scale_max_warps").metrics
        assert warp_metrics.slope_cycles_per_injected is None

    def test_baseline_simulated_once_across_axes(self, small_study):
        session = Session()
        small_study.run(session=session)
        # 1 shared baseline + 2 dram points (scale 1 collapses onto it)
        # + 2 warp points (scale 4 is the 0.25-member chain's identity,
        # so it collapses too) = 5 distinct simulations.
        assert session.cache_info()["misses"] == 5

    def test_result_json_round_trip(self, small_result):
        text = small_result.to_json()
        assert SensitivityResult.from_json(text).to_json() == text

    def test_save_and_load(self, small_result, tmp_path):
        path = tmp_path / "result.json"
        small_result.save(path)
        assert SensitivityResult.load(path).to_json() == (
            small_result.to_json())

    def test_unknown_curve_lookup_raises(self, small_result):
        with pytest.raises(ExperimentError, match="no sensitivity curve"):
            small_result.curve("scale_l2_hit_latency")

    def test_parallel_run_byte_identical(self, small_study, small_result):
        parallel = small_study.run(session=Session(), jobs=2)
        assert parallel.to_json() == small_result.to_json()

    def test_progress_callback_sees_every_point(self, small_study):
        seen = []
        small_study.run(session=Session(),
                        progress=lambda done, total, record:
                        seen.append((done, total)))
        assert seen == [(index + 1, 5) for index in range(5)]


class TestSensitivityCLI:
    ARGS = ["sensitivity", "--config", "gf106", "--workload", "vecadd",
            "--transform", "scale_dram_latency", "--scales", "1,2",
            "--param", "n=256"]

    def test_basic_run(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "Latency-sensitivity study" in output
        assert "slope (cycles/injected cycle)" in output
        assert "half-tolerance point" in output
        assert "(baseline)" in output

    def test_jobs_output_byte_identical(self, capsys):
        assert main(self.ARGS) == 0
        serial = capsys.readouterr()
        assert main(self.ARGS + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr()
        assert parallel.out == serial.out
        assert "[1/" in parallel.err  # progress stays on stderr

    def test_output_file(self, capsys, tmp_path):
        path = tmp_path / "sens.json"
        assert main(self.ARGS + ["--output", str(path)]) == 0
        result = SensitivityResult.load(path)
        assert result.curves[0].metrics.baseline_cycles > 0

    def test_transforms_listing(self, capsys):
        assert main(["transforms"]) == 0
        output = capsys.readouterr().out
        for name in BUILTIN_TRANSFORMS:
            assert name in output

    def test_bad_scales_rejected(self, capsys):
        assert main(self.ARGS[:-4] + ["--scales", "1,x"]) == 1
        assert "malformed --scales" in capsys.readouterr().err

    def test_unknown_transform_rejected(self, capsys):
        assert main(["sensitivity", "--transform", "warp_drive",
                     "--scales", "1,2"]) == 1
        assert "unknown config transform" in capsys.readouterr().err
