"""Unit tests for the L2 slice, the memory partition, and the memory system."""

import pytest

from repro.core.stages import Event
from repro.core.tracker import LatencyTracker
from repro.isa.opcodes import MemSpace
from repro.memory.address import AddressMapping
from repro.memory.cache import CacheGeometry
from repro.memory.dram import DRAMTiming, DramChannel
from repro.memory.interconnect import InterconnectConfig
from repro.memory.l2cache import L2Slice, L2SliceConfig
from repro.memory.partition import MemoryPartition, PartitionConfig
from repro.memory.request import MemoryRequest
from repro.memory.subsystem import MemorySystem
from repro.utils.errors import ConfigurationError
from repro.utils.queues import BoundedQueue


def read_request(address, sm_id=0):
    return MemoryRequest(address=address, size=128, is_write=False,
                         space=MemSpace.GLOBAL, sm_id=sm_id)


def write_request(address, sm_id=0):
    return MemoryRequest(address=address, size=128, is_write=True,
                         space=MemSpace.GLOBAL, sm_id=sm_id)


def make_l2(tracker=None, hit_latency=6, mshr_entries=4, queue=4):
    config = L2SliceConfig(
        geometry=CacheGeometry(4 * 1024, 128, 4, name="l2test"),
        hit_latency=hit_latency,
        mshr_entries=mshr_entries,
        mshr_max_merge=2,
        input_queue_size=queue,
    )
    return L2Slice(0, config, tracker or LatencyTracker())


def make_dram(tracker=None):
    timing = DRAMTiming(t_rcd=4, t_rp=4, t_cas=4, burst_cycles=2,
                        service_pad=0, queue_size=8, num_banks=2)
    mapping = AddressMapping(num_partitions=1, row_bytes=512, num_banks=2)
    return DramChannel(0, timing, mapping, tracker or LatencyTracker())


def partition_config():
    return PartitionConfig(
        rop_latency=3,
        rop_queue_size=4,
        l2_enabled=True,
        l2=L2SliceConfig(
            geometry=CacheGeometry(4 * 1024, 128, 4, name="l2test"),
            hit_latency=6, mshr_entries=8, mshr_max_merge=4, input_queue_size=4,
        ),
        dram=DRAMTiming(t_rcd=4, t_rp=4, t_cas=4, burst_cycles=2,
                        service_pad=0, queue_size=8, num_banks=2),
        return_queue_size=4,
    )


class TestL2Slice:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            L2SliceConfig(geometry=CacheGeometry(4096, 128, 4), hit_latency=0)
        with pytest.raises(ConfigurationError):
            PartitionConfig(l2_enabled=True, l2=None)

    def test_read_miss_forwards_to_dram_and_fill_returns_waiters(self):
        tracker = LatencyTracker()
        l2 = make_l2(tracker)
        dram = make_dram(tracker)
        returns = BoundedQueue(8)
        request = read_request(0x1000)
        l2.push_request(request, now=0)
        l2.cycle(1, dram, returns)
        assert dram.queue_occupancy() == 1
        assert l2.outstanding_misses() == 1
        waiters = l2.fill(request, now=50)
        assert waiters == [request]
        assert l2.cache.probe(0x1000)

    def test_read_hit_served_after_latency(self):
        tracker = LatencyTracker()
        l2 = make_l2(tracker, hit_latency=6)
        dram = make_dram(tracker)
        returns = BoundedQueue(8)
        l2.cache.fill(0x1000)
        request = read_request(0x1000)
        l2.push_request(request, now=0)
        l2.cycle(0, dram, returns)
        assert len(returns) == 0
        for cycle in range(1, 10):
            l2.cycle(cycle, dram, returns)
        assert returns.pop() is request
        assert request.l2_hit
        assert Event.L2_DATA in request.timestamps

    def test_miss_to_same_line_merges(self):
        tracker = LatencyTracker()
        l2 = make_l2(tracker)
        dram = make_dram(tracker)
        returns = BoundedQueue(8)
        first = read_request(0x2000)
        second = read_request(0x2000)
        l2.push_request(first, now=0)
        l2.push_request(second, now=0)
        l2.cycle(0, dram, returns)
        l2.cycle(1, dram, returns)
        assert dram.queue_occupancy() == 1
        waiters = l2.fill(first, now=30)
        assert set(waiters) == {first, second}

    def test_write_is_write_through_no_allocate(self):
        tracker = LatencyTracker()
        l2 = make_l2(tracker)
        dram = make_dram(tracker)
        returns = BoundedQueue(8)
        request = write_request(0x3000)
        l2.push_request(request, now=0)
        l2.cycle(0, dram, returns)
        assert dram.queue_occupancy() == 1
        assert not l2.cache.probe(0x3000)

    def test_mshr_full_stalls_queue_head(self):
        tracker = LatencyTracker()
        l2 = make_l2(tracker, mshr_entries=1)
        dram = make_dram(tracker)
        returns = BoundedQueue(8)
        l2.push_request(read_request(0x1000), now=0)
        l2.push_request(read_request(0x8000), now=0)
        l2.cycle(0, dram, returns)
        l2.cycle(1, dram, returns)
        assert dram.queue_occupancy() == 1        # second miss blocked
        assert l2.stats["mshr_full_stall_cycles"] >= 1


class TestMemoryPartition:
    def test_request_travels_rop_l2_dram_and_back(self):
        tracker = LatencyTracker()
        mapping = AddressMapping(num_partitions=1, row_bytes=512, num_banks=2)
        partition = MemoryPartition(0, partition_config(), mapping, tracker)
        request = read_request(0x4000)
        partition.accept(request, now=0)
        for cycle in range(200):
            partition.cycle(cycle)
            if partition.return_queue:
                break
        response = partition.return_queue.pop()
        assert response is request
        timestamps = request.timestamps
        assert timestamps[Event.ROP_ARRIVE] <= timestamps[Event.L2Q_ARRIVE]
        assert timestamps[Event.L2Q_ARRIVE] <= timestamps[Event.DRAM_Q_ARRIVE]
        assert timestamps[Event.DRAM_Q_ARRIVE] <= timestamps[Event.DRAM_SCHEDULED]
        assert partition.in_flight() == 0

    def test_rop_delay_enforced(self):
        tracker = LatencyTracker()
        mapping = AddressMapping(num_partitions=1, row_bytes=512, num_banks=2)
        config = partition_config()
        partition = MemoryPartition(0, config, mapping, tracker)
        request = read_request(0x100)
        partition.accept(request, now=0)
        for cycle in range(config.rop_latency):
            partition.cycle(cycle)
        assert Event.L2Q_ARRIVE not in request.timestamps
        partition.cycle(config.rop_latency)
        assert Event.L2Q_ARRIVE in request.timestamps

    def test_accept_respects_rop_capacity(self):
        tracker = LatencyTracker()
        mapping = AddressMapping(num_partitions=1, row_bytes=512, num_banks=2)
        partition = MemoryPartition(0, partition_config(), mapping, tracker)
        for index in range(4):
            assert partition.can_accept()
            partition.accept(read_request(index * 128), now=0)
        assert not partition.can_accept()
        with pytest.raises(RuntimeError):
            partition.accept(read_request(0x9000), now=0)

    def test_l2_disabled_goes_straight_to_dram(self):
        tracker = LatencyTracker()
        mapping = AddressMapping(num_partitions=1, row_bytes=512, num_banks=2)
        config = PartitionConfig(
            rop_latency=2, rop_queue_size=4, l2_enabled=False, l2=None,
            dram=DRAMTiming(t_rcd=4, t_rp=4, t_cas=4, burst_cycles=2,
                            service_pad=0, queue_size=8, num_banks=2),
            return_queue_size=4,
        )
        partition = MemoryPartition(0, config, mapping, tracker)
        assert partition.l2 is None
        request = read_request(0x100)
        partition.accept(request, now=0)
        for cycle in range(100):
            partition.cycle(cycle)
            if partition.return_queue:
                break
        assert partition.return_queue.pop() is request
        assert Event.L2_DATA not in request.timestamps
        assert Event.DRAM_DATA in request.timestamps


class TestMemorySystem:
    def make_system(self, tracker=None):
        mapping = AddressMapping(num_partitions=2, partition_chunk=256,
                                 row_bytes=512, num_banks=2)
        return MemorySystem(
            num_sms=2,
            mapping=mapping,
            icnt_config=InterconnectConfig(latency=3, accept_per_cycle=1,
                                           output_queue_size=4, credit_limit=8),
            partition_config=partition_config(),
            tracker=tracker or LatencyTracker(),
        )

    def test_roundtrip_through_system(self):
        tracker = LatencyTracker()
        system = self.make_system(tracker)
        request = read_request(0x1000, sm_id=1)
        assert system.try_inject(1, request, now=0)
        response = None
        for cycle in range(500):
            system.cycle(cycle)
            response = system.pop_response(1)
            if response is not None:
                break
        assert response is request
        assert Event.ICNT_INJECT in request.timestamps
        assert request.partition == system.partition_of(0x1000)
        assert system.in_flight() == 0

    def test_requests_route_to_correct_partition(self):
        system = self.make_system()
        assert system.partition_of(0) == 0
        assert system.partition_of(256) == 1
        assert system.partition_of(512) == 0

    def test_injection_blocked_without_credits(self):
        system = self.make_system()
        blocked = 0
        for index in range(32):
            request = read_request(index * 1024)   # all map to partition 0
            if not system.try_inject(0, request, now=0):
                blocked += 1
        assert blocked > 0
        assert system.stats["inject_stall_cycles"] == blocked

    def test_collect_stats_aggregates_components(self):
        system = self.make_system()
        request = read_request(0x100)
        system.try_inject(0, request, now=0)
        for cycle in range(300):
            system.cycle(cycle)
            if system.pop_response(0) is not None:
                break
        stats = system.collect_stats().as_dict()
        assert any("requests_injected" in key for key in stats)
        assert any("row_" in key for key in stats)

    def test_needs_at_least_one_sm(self):
        mapping = AddressMapping(num_partitions=1)
        with pytest.raises(ConfigurationError):
            MemorySystem(0, mapping, InterconnectConfig(), partition_config(),
                         LatencyTracker())
