"""Tests for the CI benchmark-regression gate (benchmarks/check_regression)."""

import json

import pytest

from benchmarks.check_regression import load_means, main, write_step_summary


def write_bench(path, means, ratio_gates=None):
    data = {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ],
    }
    if ratio_gates is not None:
        data["ratio_gates"] = ratio_gates
    path.write_text(json.dumps(data))


BASE = {"bench/a.py::test_a": 1.0, "bench/b.py::test_b": 2.0,
        "bench/c.py::test_c": 4.0, "bench/d.py::test_d": 0.5}


@pytest.fixture(autouse=True)
def isolate_step_summary(monkeypatch):
    """Keep unit-test runs of main() out of any real CI step summary."""
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


class TestLoadMeans:
    def test_reads_fullname_to_mean(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench(path, BASE)
        assert load_means(str(path)) == BASE

    def test_missing_or_empty_file_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            load_means(str(tmp_path / "missing.json"))
        assert info.value.code == 2
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"benchmarks": []}))
        with pytest.raises(SystemExit) as info:
            load_means(str(empty))
        assert info.value.code == 2


class TestCompare:
    def _run(self, tmp_path, current, **kwargs):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        write_bench(baseline_path, kwargs.pop("baseline", BASE))
        write_bench(current_path, current)
        argv = ["--baseline", str(baseline_path),
                "--current", str(current_path)]
        for name, value in kwargs.items():
            argv += [f"--{name.replace('_', '-')}", str(value)]
        return main(argv)

    def test_identical_passes(self, tmp_path, capsys):
        assert self._run(tmp_path, dict(BASE)) == 0
        assert "within threshold" in capsys.readouterr().out

    def test_single_regression_fails(self, tmp_path, capsys):
        current = dict(BASE)
        current["bench/b.py::test_b"] *= 1.5
        assert self._run(tmp_path, current) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "test_b" in captured.err

    def test_uniformly_slower_machine_passes(self, tmp_path, capsys):
        # A 2x slower runner shifts every benchmark equally; the median
        # drift correction keeps the job green.
        current = {name: mean * 2.0 for name, mean in BASE.items()}
        assert self._run(tmp_path, current) == 0
        assert "drift" in capsys.readouterr().out

    def test_relative_regression_on_slower_machine_fails(self, tmp_path):
        current = {name: mean * 2.0 for name, mean in BASE.items()}
        current["bench/c.py::test_c"] *= 1.4
        assert self._run(tmp_path, current) == 1

    def test_threshold_flag_respected(self, tmp_path):
        current = dict(BASE)
        current["bench/a.py::test_a"] *= 1.5
        assert self._run(tmp_path, current, max_regression=0.6) == 0

    def test_missing_baseline_benchmark_fails(self, tmp_path, capsys):
        current = dict(BASE)
        del current["bench/d.py::test_d"]
        assert self._run(tmp_path, current) == 1
        assert "did not run" in capsys.readouterr().err

    def test_new_benchmark_is_not_gated(self, tmp_path, capsys):
        current = dict(BASE)
        current["bench/e.py::test_new"] = 9.9
        assert self._run(tmp_path, current) == 0
        assert "not gated" in capsys.readouterr().out


#: A gate asserting a >= 2x ratio between two of the BASE benchmarks
#: (baseline means: test_c = 4.0, test_b = 2.0 -> exactly 2.0x when the
#: current run matches the baseline).
GATE = {"name": "c-over-b", "numerator": "bench/c.py::test_c",
        "denominator": "bench/b.py::test_b", "min_ratio": 2.0}


class TestRatioGates:
    def _run(self, tmp_path, current, gates, baseline=None):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        write_bench(baseline_path, baseline or BASE, ratio_gates=gates)
        write_bench(current_path, current)
        return main(["--baseline", str(baseline_path),
                     "--current", str(current_path)])

    def test_gate_met_passes(self, tmp_path, capsys):
        assert self._run(tmp_path, dict(BASE), [GATE]) == 0
        out = capsys.readouterr().out
        assert "ratio gate 'c-over-b': 2.00x" in out
        assert "1 ratio gate(s) ok" in out

    def test_gate_violated_fails(self, tmp_path, capsys):
        # The numerator got faster relative to the denominator: the
        # ratio drops below the minimum even though no absolute
        # regression occurred anywhere.
        current = dict(BASE)
        current["bench/c.py::test_c"] = 3.0  # 1.5x over test_b
        assert self._run(tmp_path, current, [GATE]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "1.50x below the required 2.00x" in captured.err

    def test_gate_immune_to_machine_drift(self, tmp_path):
        # A uniformly 3x slower runner preserves every same-run ratio.
        current = {name: mean * 3.0 for name, mean in BASE.items()}
        assert self._run(tmp_path, current, [GATE]) == 0

    def test_missing_gated_benchmark_fails(self, tmp_path, capsys):
        # The gated benchmarks must exist in the current run; a gate
        # whose benchmark vanished must not silently stop gating.  (The
        # benchmark also vanishes from the baseline's means here so the
        # missing-benchmark check does not fire first.)
        baseline = {name: mean for name, mean in BASE.items()
                    if name != "bench/c.py::test_c"}
        current = dict(baseline)
        assert self._run(tmp_path, current, [GATE],
                         baseline=baseline) == 1
        assert "did not run" in capsys.readouterr().err

    def test_malformed_gate_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            self._run(tmp_path, dict(BASE), [{"name": "broken"}])
        assert info.value.code == 2

    def test_gates_in_step_summary(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert self._run(tmp_path, dict(BASE), [GATE]) == 0
        text = summary.read_text()
        assert "### Ratio gates" in text
        assert "c-over-b" in text
        assert "2.00x" in text


class TestStepSummary:
    def test_noop_without_summary_env(self, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert not write_step_summary("anything")

    def _summary_after_run(self, tmp_path, monkeypatch, current):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        write_bench(baseline_path, BASE)
        write_bench(current_path, current)
        code = main(["--baseline", str(baseline_path),
                     "--current", str(current_path)])
        return code, summary.read_text()

    def test_markdown_table_written_on_pass(self, tmp_path, monkeypatch):
        current = dict(BASE)
        current["bench/a.py::test_a"] = 0.4  # a speedup
        current["bench/e.py::test_new"] = 9.9  # ungated newcomer
        code, text = self._summary_after_run(tmp_path, monkeypatch, current)
        assert code == 0
        assert "## Benchmark comparison" in text
        assert "| benchmark | baseline (s) | current (s) |" in text
        assert "| delta vs baseline |" in text
        assert "`bench/a.py::test_a`" in text
        assert ":zap: faster" in text
        assert ":new: not gated" in text
        assert "within threshold" in text

    def test_markdown_table_has_signed_deltas(self, tmp_path, monkeypatch):
        current = dict(BASE)
        current["bench/a.py::test_a"] = 0.5   # corrected 0.50x -> -50.0%
        current["bench/b.py::test_b"] = 2.4   # corrected 1.20x -> +20.0%
        code, text = self._summary_after_run(tmp_path, monkeypatch, current)
        assert code == 0
        row_a = next(line for line in text.splitlines() if "test_a" in line)
        row_b = next(line for line in text.splitlines() if "test_b" in line)
        assert "-50.0%" in row_a
        assert "+20.0%" in row_b
        # Ungated newcomers show no delta.
        current["bench/e.py::test_new"] = 9.9
        _code, text = self._summary_after_run(tmp_path, monkeypatch, current)
        row_new = next(line for line in text.splitlines()
                       if "test_new" in line)
        assert "| - | - " in row_new

    def test_markdown_table_flags_regressions(self, tmp_path, monkeypatch):
        current = dict(BASE)
        current["bench/b.py::test_b"] *= 1.8
        code, text = self._summary_after_run(tmp_path, monkeypatch, current)
        assert code == 1
        assert ":x: regression" in text
        assert "regressed beyond" in text

    def test_appends_to_existing_summary(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        summary.write_text("earlier step\n")
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert write_step_summary("benchmark table\n")
        assert summary.read_text() == "earlier step\nbenchmark table\n"
