"""Unit tests for the crossbar interconnect."""

import pytest

from repro.memory.interconnect import Interconnect, InterconnectConfig
from repro.utils.errors import ConfigurationError


def make_icnt(latency=4, accept=1, out_queue=2, credits=4, sources=2, dests=2):
    return Interconnect(
        num_sources=sources,
        num_destinations=dests,
        config=InterconnectConfig(latency=latency, accept_per_cycle=accept,
                                  output_queue_size=out_queue,
                                  credit_limit=credits),
        name="test",
    )


class TestConfigValidation:
    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(latency=0)

    def test_rejects_credit_below_queue(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(output_queue_size=8, credit_limit=4)

    def test_rejects_empty_network(self):
        with pytest.raises(ConfigurationError):
            Interconnect(0, 1, InterconnectConfig())


class TestDelivery:
    def test_packet_arrives_after_latency(self):
        icnt = make_icnt(latency=5)
        icnt.inject(0, 1, "pkt", now=10)
        for cycle in range(10, 15):
            icnt.cycle(cycle)
            assert icnt.peek(1) is None
        icnt.cycle(15)
        assert icnt.pop(1) == "pkt"

    def test_fifo_order_per_destination(self):
        icnt = make_icnt(latency=1, accept=2, out_queue=4, credits=8)
        icnt.inject(0, 0, "first", now=0)
        icnt.inject(1, 0, "second", now=0)
        icnt.cycle(1)
        assert icnt.pop(0) == "first"
        assert icnt.pop(0) == "second"

    def test_accept_rate_limits_delivery(self):
        icnt = make_icnt(latency=1, accept=1, out_queue=4, credits=8)
        for index in range(3):
            icnt.inject(0, 0, index, now=0)
        icnt.cycle(1)
        assert len(icnt._outputs[0]) == 1
        icnt.cycle(2)
        assert len(icnt._outputs[0]) == 2

    def test_output_queue_backpressure(self):
        icnt = make_icnt(latency=1, accept=2, out_queue=1, credits=4)
        icnt.inject(0, 0, "a", now=0)
        icnt.inject(0, 0, "b", now=0)
        icnt.cycle(1)
        assert len(icnt._outputs[0]) == 1      # second packet blocked
        assert icnt.stats["output_blocked_cycles"] >= 1
        icnt.pop(0)
        icnt.cycle(2)
        assert icnt.pop(0) == "b"

    def test_invalid_ports_rejected(self):
        icnt = make_icnt()
        with pytest.raises(ConfigurationError):
            icnt.inject(5, 0, "x", now=0)
        with pytest.raises(ConfigurationError):
            icnt.inject(0, 5, "x", now=0)


class TestCredits:
    def test_credit_limit_blocks_injection(self):
        icnt = make_icnt(latency=10, credits=2, out_queue=2)
        icnt.inject(0, 0, "a", now=0)
        icnt.inject(0, 0, "b", now=0)
        assert not icnt.can_inject(0)
        assert icnt.can_inject(1)
        with pytest.raises(RuntimeError):
            icnt.inject(0, 0, "c", now=0)

    def test_credits_released_on_pop(self):
        icnt = make_icnt(latency=1, credits=2, out_queue=2)
        icnt.inject(0, 0, "a", now=0)
        icnt.inject(0, 0, "b", now=0)
        icnt.cycle(1)
        icnt.pop(0)
        icnt.cycle(2)
        assert icnt.can_inject(0)

    def test_pending_counts(self):
        icnt = make_icnt(latency=3)
        icnt.inject(0, 1, "a", now=0)
        assert icnt.pending(1) == 1
        assert icnt.total_pending() == 1


class TestNextEvent:
    def test_idle_network_has_no_event(self):
        assert make_icnt().next_event_time(0) is None

    def test_in_flight_packet_reports_arrival(self):
        icnt = make_icnt(latency=7)
        icnt.inject(0, 1, "a", now=2)
        assert icnt.next_event_time(3) == 9

    def test_waiting_output_reports_next_cycle(self):
        icnt = make_icnt(latency=1)
        icnt.inject(0, 1, "a", now=0)
        icnt.cycle(1)
        assert icnt.next_event_time(5) == 6
