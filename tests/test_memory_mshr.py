"""Unit tests for the MSHR table."""

import pytest

from repro.isa.opcodes import MemSpace
from repro.memory.mshr import MSHRTable
from repro.memory.request import MemoryRequest
from repro.utils.errors import SimulationError


def make_request(address=0x100):
    return MemoryRequest(address=address, size=128, is_write=False,
                         space=MemSpace.GLOBAL, sm_id=0)


class TestMSHRTable:
    def test_allocate_and_lookup(self):
        table = MSHRTable(num_entries=2)
        request = make_request()
        entry = table.allocate(0x100, request)
        assert table.lookup(0x100) is entry
        assert entry.primary is request
        assert entry.num_requests == 1

    def test_lookup_missing_returns_none(self):
        assert MSHRTable(2).lookup(0x40) is None

    def test_full_and_capacity(self):
        table = MSHRTable(num_entries=1)
        table.allocate(0x100, make_request())
        assert table.full()
        with pytest.raises(SimulationError):
            table.allocate(0x200, make_request(0x200))

    def test_double_allocate_same_line_rejected(self):
        table = MSHRTable(4)
        table.allocate(0x100, make_request())
        with pytest.raises(SimulationError):
            table.allocate(0x100, make_request())

    def test_merge_attaches_to_primary(self):
        table = MSHRTable(4, max_merged=2)
        primary = make_request()
        merged = make_request()
        table.allocate(0x100, primary)
        entry = table.merge(0x100, merged)
        assert entry.num_requests == 2
        assert merged in primary.merged

    def test_merge_limit_enforced(self):
        table = MSHRTable(4, max_merged=1)
        table.allocate(0x100, make_request())
        table.merge(0x100, make_request())
        assert not table.can_merge(0x100)
        with pytest.raises(SimulationError):
            table.merge(0x100, make_request())

    def test_merge_without_entry_rejected(self):
        with pytest.raises(SimulationError):
            MSHRTable(4).merge(0x100, make_request())

    def test_release_returns_all_waiters(self):
        table = MSHRTable(4)
        primary = make_request()
        merged = make_request()
        table.allocate(0x100, primary)
        table.merge(0x100, merged)
        entry = table.release(0x100)
        assert entry.primary is primary
        assert entry.merged == [merged]
        assert table.lookup(0x100) is None
        assert not table.full()

    def test_release_unknown_line_rejected(self):
        with pytest.raises(SimulationError):
            MSHRTable(4).release(0x123)

    def test_outstanding_lines(self):
        table = MSHRTable(4)
        table.allocate(0x100, make_request(0x100))
        table.allocate(0x200, make_request(0x200))
        assert sorted(table.outstanding_lines()) == [0x100, 0x200]

    def test_zero_entries_rejected(self):
        with pytest.raises(SimulationError):
            MSHRTable(0)

    def test_stats_track_operations(self):
        table = MSHRTable(4)
        table.allocate(0x100, make_request())
        table.merge(0x100, make_request())
        table.release(0x100)
        assert table.stats["allocations"] == 1
        assert table.stats["merges"] == 1
        assert table.stats["releases"] == 1
