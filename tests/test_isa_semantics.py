"""Unit and property tests for the functional instruction semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa import CmpOp, Opcode, semantics
from repro.isa.instruction import Instruction
from repro.isa.operands import Reg
from repro.utils.errors import SimulationError

# Register values are stored in float64, so integer arithmetic is exact up
# to 2**53; the bundled workloads only ever form products of indices and
# addresses, which keeps them far below that.  The property tests use the
# same regime.
lane_ints = st.lists(st.integers(min_value=-(2**24), max_value=2**24),
                     min_size=4, max_size=4)
lane_floats = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=4, max_size=4)


def run(opcode, *srcs, cmp=None):
    instruction = Instruction(opcode=opcode, dst=Reg(0), cmp=cmp)
    return semantics.compute(
        instruction, [np.array(src, dtype=np.float64) for src in srcs]
    )


class TestIntegerOps:
    def test_iadd(self):
        assert list(run(Opcode.IADD, [1, 2], [3, 4])) == [4, 6]

    def test_isub(self):
        assert list(run(Opcode.ISUB, [5, 2], [3, 4])) == [2, -2]

    def test_imul(self):
        assert list(run(Opcode.IMUL, [3, -2], [4, 5])) == [12, -10]

    def test_imad(self):
        assert list(run(Opcode.IMAD, [2, 3], [4, 5], [1, 1])) == [9, 16]

    def test_min_max(self):
        assert list(run(Opcode.IMIN, [1, 7], [3, 2])) == [1, 2]
        assert list(run(Opcode.IMAX, [1, 7], [3, 2])) == [3, 7]

    def test_bitwise(self):
        assert list(run(Opcode.AND, [6], [3])) == [2]
        assert list(run(Opcode.OR, [6], [3])) == [7]
        assert list(run(Opcode.XOR, [6], [3])) == [5]
        assert list(run(Opcode.NOT, [0])) == [-1]

    def test_shifts(self):
        assert list(run(Opcode.SHL, [1], [4])) == [16]
        assert list(run(Opcode.SHR, [16], [2])) == [4]

    def test_division_and_remainder(self):
        assert list(run(Opcode.IDIV, [7], [2])) == [3]
        assert list(run(Opcode.IREM, [7], [2])) == [1]

    def test_division_by_zero_yields_zero(self):
        assert list(run(Opcode.IDIV, [7], [0])) == [0]
        assert list(run(Opcode.IREM, [7], [0])) == [0]

    @given(lane_ints, lane_ints)
    def test_iadd_matches_numpy(self, a, b):
        assert list(run(Opcode.IADD, a, b)) == [x + y for x, y in zip(a, b)]

    @given(lane_ints, lane_ints, lane_ints)
    def test_imad_is_mul_plus_add(self, a, b, c):
        expected = run(Opcode.IADD, list(run(Opcode.IMUL, a, b)), c)
        assert list(run(Opcode.IMAD, a, b, c)) == list(expected)


class TestFloatOps:
    def test_fadd_fsub_fmul(self):
        assert list(run(Opcode.FADD, [1.5], [2.5])) == [4.0]
        assert list(run(Opcode.FSUB, [1.5], [2.5])) == [-1.0]
        assert list(run(Opcode.FMUL, [1.5], [2.0])) == [3.0]

    def test_ffma(self):
        assert list(run(Opcode.FFMA, [2.0], [3.0], [1.0])) == [7.0]

    def test_fmin_fmax(self):
        assert list(run(Opcode.FMIN, [1.0], [2.0])) == [1.0]
        assert list(run(Opcode.FMAX, [1.0], [2.0])) == [2.0]

    def test_fdiv_by_zero_is_zero(self):
        assert list(run(Opcode.FDIV, [3.0], [0.0])) == [0.0]

    def test_fsqrt_clamps_negative(self):
        assert list(run(Opcode.FSQRT, [-4.0])) == [0.0]
        assert list(run(Opcode.FSQRT, [9.0])) == [3.0]

    def test_frcp(self):
        assert list(run(Opcode.FRCP, [4.0])) == [0.25]
        assert list(run(Opcode.FRCP, [0.0])) == [0.0]

    @given(lane_floats, lane_floats)
    def test_fadd_commutes(self, a, b):
        assert list(run(Opcode.FADD, a, b)) == list(run(Opcode.FADD, b, a))


class TestMovSelSetp:
    def test_mov_copies(self):
        source = np.array([1.0, 2.0])
        result = run(Opcode.MOV, source)
        assert list(result) == [1.0, 2.0]

    def test_mov_returns_independent_array(self):
        source = np.array([1.0, 2.0])
        result = semantics.compute(
            Instruction(opcode=Opcode.MOV, dst=Reg(0)), [source]
        )
        result[0] = 99.0
        assert source[0] == 1.0

    def test_sel_picks_by_predicate(self):
        assert list(run(Opcode.SEL, [1, 0], [10, 10], [20, 20])) == [10, 20]

    @pytest.mark.parametrize("cmp,expected", [
        (CmpOp.EQ, [True, False]),
        (CmpOp.NE, [False, True]),
        (CmpOp.LT, [False, True]),
        (CmpOp.LE, [True, True]),
        (CmpOp.GT, [False, False]),
        (CmpOp.GE, [True, False]),
    ])
    def test_setp_comparisons(self, cmp, expected):
        assert list(run(Opcode.SETP, [3, 1], [3, 4], cmp=cmp)) == expected

    @given(lane_ints, lane_ints)
    def test_setp_lt_complements_ge(self, a, b):
        lt = run(Opcode.SETP, a, b, cmp=CmpOp.LT)
        ge = run(Opcode.SETP, a, b, cmp=CmpOp.GE)
        assert list(lt) == [not flag for flag in ge]


class TestErrors:
    def test_memory_opcode_rejected(self):
        with pytest.raises(SimulationError):
            run(Opcode.LD, [0])

    def test_control_opcode_rejected(self):
        with pytest.raises(SimulationError):
            run(Opcode.BRA, [0])
