"""Unit and property tests for the SIMT reconvergence stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt.simt_stack import SIMTStack
from repro.utils.errors import SimulationError


def mask(*lanes, size=8):
    result = np.zeros(size, dtype=bool)
    for lane in lanes:
        result[lane] = True
    return result


def full_mask(size=8):
    return np.ones(size, dtype=bool)


class TestBasicControlFlow:
    def test_initial_state(self):
        stack = SIMTStack(full_mask())
        assert stack.pc == 0
        assert stack.depth == 1
        assert stack.any_active()

    def test_advance_moves_pc(self):
        stack = SIMTStack(full_mask())
        stack.advance(5)
        assert stack.pc == 5

    def test_uniform_taken_branch_jumps(self):
        stack = SIMTStack(full_mask())
        stack.branch(taken_mask=full_mask(), target=10, reconv=20,
                     fallthrough_pc=1)
        assert stack.pc == 10
        assert stack.depth == 1

    def test_uniform_not_taken_branch_falls_through(self):
        stack = SIMTStack(full_mask())
        stack.branch(taken_mask=mask(), target=10, reconv=20, fallthrough_pc=1)
        assert stack.pc == 1
        assert stack.depth == 1

    def test_divergent_branch_executes_fallthrough_first(self):
        stack = SIMTStack(full_mask())
        taken = mask(0, 1, 2)
        stack.branch(taken_mask=taken, target=10, reconv=20, fallthrough_pc=1)
        assert stack.depth == 3
        assert stack.pc == 1
        assert np.array_equal(stack.active_mask, full_mask() & ~taken)

    def test_reconvergence_restores_full_mask(self):
        stack = SIMTStack(full_mask())
        taken = mask(0, 1)
        stack.branch(taken_mask=taken, target=10, reconv=20, fallthrough_pc=1)
        stack.advance(20)                      # fall-through path reconverges
        assert stack.pc == 10                  # taken path now active
        assert np.array_equal(stack.active_mask, taken)
        stack.advance(20)                      # taken path reconverges
        assert stack.depth == 1
        assert stack.pc == 20
        assert np.array_equal(stack.active_mask, full_mask())

    def test_taken_mask_must_be_subset_of_active(self):
        stack = SIMTStack(mask(0, 1))
        with pytest.raises(SimulationError):
            stack.branch(taken_mask=mask(5), target=3, reconv=4,
                         fallthrough_pc=1)

    def test_divergent_branch_requires_reconvergence_pc(self):
        stack = SIMTStack(full_mask())
        with pytest.raises(SimulationError):
            stack.branch(taken_mask=mask(0), target=3, reconv=None,
                         fallthrough_pc=1)


class TestLaneExit:
    def test_kill_lanes_removes_from_all_entries(self):
        stack = SIMTStack(full_mask())
        stack.branch(taken_mask=mask(0, 1, 2), target=10, reconv=20,
                     fallthrough_pc=1)
        stack.kill_lanes(mask(3, 4, 5, 6, 7))
        # The fall-through entry had lanes 3..7 and is now empty: it must be
        # pruned, activating the taken path.
        assert stack.pc == 10
        assert np.array_equal(stack.active_mask, mask(0, 1, 2))

    def test_kill_all_lanes_leaves_bottom_entry(self):
        stack = SIMTStack(full_mask())
        stack.kill_lanes(full_mask())
        assert stack.depth == 1
        assert not stack.any_active()


class TestNestedDivergence:
    def test_nested_if_reconverges_inside_out(self):
        stack = SIMTStack(full_mask())
        outer_taken = mask(0, 1, 2, 3)
        stack.branch(taken_mask=outer_taken, target=10, reconv=30,
                     fallthrough_pc=1)
        # fall-through path (lanes 4..7) diverges again
        inner_taken = mask(4, 5)
        stack.branch(taken_mask=inner_taken, target=5, reconv=8,
                     fallthrough_pc=2)
        assert stack.depth == 5
        stack.advance(8)          # inner fall-through reconverges
        assert stack.pc == 5      # inner taken path
        stack.advance(8)          # inner taken reconverges
        assert stack.pc == 8
        assert np.array_equal(stack.active_mask, full_mask() & ~outer_taken)
        stack.advance(30)         # outer fall-through reconverges
        assert stack.pc == 10
        stack.advance(30)
        assert stack.depth == 1
        assert np.array_equal(stack.active_mask, full_mask())


class TestStackProperties:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=255),   # taken lanes bitmask
        st.integers(min_value=1, max_value=30),    # target
    ), min_size=1, max_size=10))
    @settings(max_examples=60)
    def test_active_mask_always_subset_of_initial(self, branches):
        stack = SIMTStack(full_mask())
        reconv = 40
        for lanes_bits, target in branches:
            taken = np.array([(lanes_bits >> lane) & 1 for lane in range(8)],
                             dtype=bool)
            taken &= stack.active_mask
            before = stack.active_mask.copy()
            stack.branch(taken_mask=taken, target=target, reconv=reconv,
                         fallthrough_pc=stack.pc + 1)
            # The newly active path can only ever be a subset of the lanes
            # that were active before the branch.
            assert not np.any(stack.active_mask & ~before)
            assert np.all(stack.active_mask <= full_mask())
            assert stack.any_active()

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40)
    def test_reconvergence_always_restores_mask(self, lanes_bits):
        initial = full_mask()
        stack = SIMTStack(initial)
        taken = np.array([(lanes_bits >> lane) & 1 for lane in range(8)],
                         dtype=bool)
        stack.branch(taken_mask=taken, target=10, reconv=20, fallthrough_pc=1)
        for _ in range(4):
            if stack.depth == 1:
                break
            stack.advance(20)
        assert stack.depth == 1
        assert np.array_equal(stack.active_mask, initial)
