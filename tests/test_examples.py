"""Smoke tests for the runnable examples (small problem sizes)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, argv):
    """Execute an example script as __main__ with the given arguments."""
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} missing"
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert (EXAMPLES_DIR / "quickstart.py") in scripts

    def test_quickstart_runs(self, capsys):
        run_example("quickstart.py", [])
        output = capsys.readouterr().out
        assert "correct: True" in output
        assert "custom workload 'saxpy_demo' verified" in output
        assert "session cache" in output

    def test_bfs_latency_breakdown_runs_small(self, capsys):
        run_example("bfs_latency_breakdown.py",
                    ["--nodes", "256", "--degree", "4", "--buckets", "8"])
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Figure 2" in output
        assert "exposed" in output

    def test_dram_scheduler_study_runs_small(self, capsys):
        run_example("dram_scheduler_study.py",
                    ["--nodes", "256", "--degree", "4"])
        output = capsys.readouterr().out
        assert "DRAM scheduling policy" in output
        assert "Warp scheduling policy" in output
        assert "L1 policy" in output

    def test_parallel_sweep_runs_small(self, capsys):
        run_example("parallel_sweep.py",
                    ["--nodes", "128", "256", "--degree", "4",
                     "--jobs", "2"])
        output = capsys.readouterr().out
        assert "byte-identical to serial: True" in output
        assert "parent cache after merge" in output

    def test_sensitivity_study_runs_small(self, capsys):
        run_example("sensitivity_study.py",
                    ["--nodes", "256", "--degree", "4",
                     "--scales", "1", "2", "--jobs", "2"])
        output = capsys.readouterr().out
        assert "Latency-sensitivity study" in output
        assert "scale_dram_latency" in output
        assert "scale_max_warps" in output
        assert "cycles monotone non-decreasing along DRAM axis: True" in output

    def test_latency_tolerance_atlas_runs_small(self, capsys):
        run_example("latency_tolerance_atlas.py",
                    ["--values", "1", "2", "--scales", "1", "2",
                     "--iters", "16", "--jobs", "2"])
        output = capsys.readouterr().out
        assert "Latency-tolerance atlas" in output
        assert "Fitted tolerance metrics" in output
        assert ("latency sensitivity monotone non-increasing along ilp: "
                "True") in output

    @pytest.mark.slow
    def test_static_latency_table_runs_quick(self, capsys):
        run_example("static_latency_table.py", ["--quick"])
        output = capsys.readouterr().out
        assert "Table I reproduction" in output
        assert "detected" in output
