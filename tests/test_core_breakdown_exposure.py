"""Tests for the Figure 1 breakdown and Figure 2 exposure analyses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.breakdown import compute_breakdown
from repro.core.exposure import ExposureBucket, ExposureResult, compute_exposure
from repro.core.stages import Event, Stage
from repro.core.tracker import LatencyTracker, RequestRecord
from repro.utils.errors import ConfigurationError


def make_record(latency, l1_hit=False, is_write=False, space="global"):
    """Build a synthetic request record with a plausible event sequence."""
    timestamps = {Event.ISSUE: 0}
    if l1_hit:
        timestamps[Event.L1_ACCESS] = min(8, latency)
    else:
        timestamps[Event.L1_ACCESS] = min(8, latency)
        timestamps[Event.ICNT_INJECT] = min(16, latency)
        timestamps[Event.ROP_ARRIVE] = min(40, latency)
        timestamps[Event.L2Q_ARRIVE] = min(80, latency)
        timestamps[Event.DRAM_Q_ARRIVE] = min(100, latency)
        timestamps[Event.DRAM_SCHEDULED] = min(latency // 2 + 100, latency)
        timestamps[Event.DRAM_DATA] = min(latency // 2 + 150, latency)
    timestamps[Event.COMPLETE] = latency
    return RequestRecord(
        request_id=0, address=0x1000, is_write=is_write, space=space,
        sm_id=0, warp_id=0, pc=0, timestamps=timestamps,
    )


class TestBreakdown:
    def test_empty_records(self):
        result = compute_breakdown([])
        assert result.total_requests == 0
        assert result.buckets == []

    def test_bucket_percentages_sum_to_100(self):
        records = [make_record(latency) for latency in (50, 300, 700, 1200)]
        result = compute_breakdown(records, num_buckets=8)
        for bucket in result.non_empty_buckets():
            assert sum(bucket.percentages().values()) == pytest.approx(100.0)

    def test_l1_hits_are_pure_sm_base(self):
        records = [make_record(45, l1_hit=True) for _ in range(10)]
        result = compute_breakdown(records, num_buckets=4)
        fractions = result.stage_fractions()
        assert fractions[Stage.SM_BASE] == pytest.approx(1.0)

    def test_requests_land_in_correct_buckets(self):
        records = [make_record(100), make_record(1000)]
        result = compute_breakdown(records, num_buckets=2)
        assert result.buckets[0].count == 1
        assert result.buckets[-1].count == 1
        assert result.min_latency == 100
        assert result.max_latency == 1000

    def test_writes_and_other_spaces_filtered(self):
        records = [make_record(100), make_record(100, is_write=True),
                   make_record(100, space="shared")]
        result = compute_breakdown(records, num_buckets=2)
        assert result.total_requests == 1

    def test_clipping_folds_outliers_into_last_bucket(self):
        records = [make_record(100) for _ in range(99)] + [make_record(100000)]
        result = compute_breakdown(records, num_buckets=4, clip_percentile=95)
        assert result.max_latency < 100000
        assert sum(bucket.count for bucket in result.buckets) == 100

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_breakdown([make_record(10)], num_buckets=0)
        with pytest.raises(ConfigurationError):
            compute_breakdown([make_record(10)], clip_percentile=0)

    def test_stage_totals_and_queueing_metric(self):
        records = [make_record(1500) for _ in range(5)]
        result = compute_breakdown(records, num_buckets=4)
        totals = result.stage_totals()
        assert totals[Stage.DRAM_Q_TO_SCH] > 0
        fraction = result.queueing_and_arbitration_fraction(latency_threshold=0)
        assert 0 <= fraction <= 1

    def test_format_table_lists_stage_names(self):
        records = [make_record(100), make_record(900)]
        table = compute_breakdown(records, num_buckets=4).format_table()
        assert "SM Base" in table
        assert "DRAM(QtoSch)" in table

    @given(st.lists(st.integers(min_value=10, max_value=3000), min_size=1,
                    max_size=60),
           st.integers(min_value=1, max_value=24))
    @settings(max_examples=40)
    def test_counts_conserved(self, latencies, num_buckets):
        records = [make_record(latency) for latency in latencies]
        result = compute_breakdown(records, num_buckets=num_buckets)
        assert sum(bucket.count for bucket in result.buckets) == len(latencies)
        total_cycles = sum(bucket.total_cycles for bucket in result.buckets)
        assert total_cycles == sum(latencies)


class TestExposure:
    @staticmethod
    def tracked_loads(loads, busy_cycles=(), sm_id=0):
        tracker = LatencyTracker()
        for cycle in busy_cycles:
            tracker.note_issue_cycle(sm_id, cycle)
        for issue, complete in loads:
            tracker.record_load(sm_id, 0, 0, "global", issue, complete, 1, False)
        return tracker

    def test_empty(self):
        tracker = LatencyTracker()
        result = compute_exposure(tracker)
        assert result.total_loads == 0
        assert result.overall_exposed_fraction == 0.0

    def test_fully_exposed_when_sm_idle(self):
        tracker = self.tracked_loads([(0, 100), (0, 200)])
        result = compute_exposure(tracker, num_buckets=4)
        assert result.overall_exposed_fraction == pytest.approx(1.0)
        assert result.fraction_of_loads_mostly_exposed() == 1.0

    def test_fully_hidden_when_sm_always_busy(self):
        tracker = self.tracked_loads([(0, 100)], busy_cycles=range(0, 100))
        result = compute_exposure(tracker, num_buckets=4)
        assert result.overall_exposed_fraction == pytest.approx(0.0)
        assert result.fraction_of_loads_mostly_exposed() == 0.0

    def test_partial_exposure(self):
        tracker = self.tracked_loads([(0, 100)], busy_cycles=range(0, 25))
        result = compute_exposure(tracker, num_buckets=2)
        assert result.overall_exposed_fraction == pytest.approx(0.75)

    def test_bucket_totals_and_percentages(self):
        tracker = self.tracked_loads([(0, 100), (0, 1000)],
                                     busy_cycles=range(0, 50))
        result = compute_exposure(tracker, num_buckets=2)
        non_empty = result.non_empty_buckets()
        assert len(non_empty) == 2
        for bucket in non_empty:
            assert bucket.exposed_percent + bucket.hidden_percent == pytest.approx(100.0)
        assert result.total_loads == 2

    def test_space_filter(self):
        tracker = LatencyTracker()
        tracker.record_load(0, 0, 0, "shared", 0, 50, 1, True)
        tracker.record_load(0, 0, 0, "global", 0, 50, 1, False)
        result = compute_exposure(tracker)
        assert result.total_loads == 1

    def test_invalid_parameters(self):
        tracker = LatencyTracker()
        with pytest.raises(ConfigurationError):
            compute_exposure(tracker, num_buckets=0)
        with pytest.raises(ConfigurationError):
            compute_exposure(tracker, clip_percentile=200)

    def test_format_table(self):
        tracker = self.tracked_loads([(0, 100), (0, 900)])
        text = compute_exposure(tracker, num_buckets=4).format_table()
        assert "Exposed %" in text
        assert "Hidden %" in text

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=500),
                              st.integers(min_value=1, max_value=800)),
                    min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_exposed_plus_hidden_equals_total(self, raw_loads):
        loads = [(issue, issue + duration) for issue, duration in raw_loads]
        tracker = self.tracked_loads(loads, busy_cycles=range(0, 600, 3))
        result = compute_exposure(tracker, num_buckets=8)
        total = sum(bucket.total_cycles for bucket in result.buckets)
        assert total == sum(complete - issue for issue, complete in loads)
        assert 0.0 <= result.overall_exposed_fraction <= 1.0


class TestExposureEdgeCases:
    """Boundary behaviour the sensitivity metrics depend on."""

    def test_mostly_exposed_threshold_is_strict(self):
        # Exactly-at-threshold loads do not count as "mostly exposed":
        # the comparison is strictly greater-than.
        result = ExposureResult(buckets=[], total_loads=2,
                                per_load=[(100, 50), (100, 51)])
        assert result.fraction_of_loads_mostly_exposed(50.0) == 0.5
        assert result.fraction_of_loads_mostly_exposed(51.0) == 0.0
        assert result.fraction_of_loads_mostly_exposed(50.999) == 0.5

    def test_mostly_exposed_zero_threshold_needs_some_exposure(self):
        # At threshold 0 a fully hidden load (exposed == 0) still does
        # not count; any positive exposure does.
        result = ExposureResult(buckets=[], total_loads=2,
                                per_load=[(100, 0), (100, 1)])
        assert result.fraction_of_loads_mostly_exposed(0.0) == 0.5

    def test_mostly_exposed_skips_zero_latency_loads(self):
        # Zero-latency loads have no exposure ratio; they stay in the
        # denominator but can never be "mostly exposed".
        result = ExposureResult(buckets=[], total_loads=2,
                                per_load=[(0, 0), (100, 100)])
        assert result.fraction_of_loads_mostly_exposed() == 0.5

    def test_mostly_exposed_with_no_loads(self):
        assert ExposureResult(
            buckets=[], total_loads=0).fraction_of_loads_mostly_exposed() == 0.0

    def test_overall_exposed_fraction_empty_buckets(self):
        # No buckets at all, and buckets holding zero cycles, both
        # yield 0.0 instead of dividing by zero.
        assert ExposureResult(buckets=[],
                              total_loads=0).overall_exposed_fraction == 0.0
        empty = ExposureBucket(lower=0.0, upper=10.0)
        assert ExposureResult(buckets=[empty],
                              total_loads=0).overall_exposed_fraction == 0.0
        assert empty.exposed_percent == 0.0
        assert empty.hidden_percent == 0.0

    def test_format_table_include_empty_lists_every_bucket(self):
        tracker = TestExposure.tracked_loads([(0, 100), (0, 900)])
        result = compute_exposure(tracker, num_buckets=6)
        dense = result.format_table(include_empty=True).splitlines()
        sparse = result.format_table().splitlines()
        # Header + separator + one row per bucket when empties included.
        assert len(dense) == 2 + len(result.buckets)
        assert len(sparse) == 2 + len(result.non_empty_buckets())
        assert len(result.non_empty_buckets()) < len(result.buckets)
        for bucket in result.buckets:
            assert any(line.startswith(bucket.label) for line in dense)

    def test_format_table_with_no_buckets(self):
        text = ExposureResult(buckets=[], total_loads=0).format_table(
            include_empty=True)
        lines = text.splitlines()
        assert lines[0].startswith("Latency")
        assert len(lines) == 2
