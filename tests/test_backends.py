"""Tests for the simulation-core backend registry and its shims.

Covers the :mod:`repro.simt.backend` front door (registry contents,
lookup errors, exactness queries, third-party registration), the
deprecated ``reference_core`` boolean shims on :class:`GPUConfig`,
:class:`Session`, and :class:`ParallelExecutor`, and the estimator's
payload labelling — the API-surface half of the golden-equivalence
guarantees pinned in ``test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import Experiment, Session
from repro.gpu import GPU, get_config
from repro.gpu.config import GPUConfig
from repro.simt.backend import (
    CORE_BACKENDS,
    CoreBackend,
    available_core_backends,
    core_backend_is_exact,
    get_core_backend,
    register_core_backend,
)
from repro.utils.errors import ConfigurationError, ExperimentError
from repro.workloads import create_workload
from tests.conftest import make_fast_config


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_core_backends() == [
            "estimator", "fast", "reference", "vector",
        ]

    def test_exactness_flags(self):
        assert get_core_backend("reference").exact
        assert get_core_backend("fast").exact
        assert get_core_backend("vector").exact
        assert not get_core_backend("estimator").exact

    def test_only_reference_uses_reference_memory(self):
        for name in available_core_backends():
            backend = get_core_backend(name)
            assert backend.reference_memory == (name == "reference")

    def test_backends_have_descriptions(self):
        for name in available_core_backends():
            assert get_core_backend(name).description

    def test_unknown_backend_raises_naming_available(self):
        with pytest.raises(ConfigurationError, match="vector"):
            get_core_backend("no-such-core")

    def test_unknown_backend_is_not_exact(self):
        # Conservative: an unknown name must never join the byte-identity
        # store-key class.
        assert not core_backend_is_exact("no-such-core")

    def test_exactness_by_name(self):
        assert core_backend_is_exact("fast")
        assert core_backend_is_exact("vector")
        assert not core_backend_is_exact("estimator")

    def test_third_party_registration_dispatches(self):
        """A registered backend is constructible through GPUConfig."""
        reference = get_core_backend("reference")
        backend = CoreBackend(
            name="test-custom",
            factory=reference.factory,
            exact=False,
            description="registry test double",
        )
        register_core_backend(backend)
        try:
            assert "test-custom" in available_core_backends()
            assert not core_backend_is_exact("test-custom")
            gpu = GPU(make_fast_config(core_backend="test-custom"))
            workload = create_workload("vecadd", n=128, block_dim=64)
            workload.run(gpu)
            assert workload.verify(gpu)
        finally:
            CORE_BACKENDS.unregister("test-custom")

    def test_duplicate_registration_rejected(self):
        from repro.utils.errors import RegistryError

        with pytest.raises(RegistryError):
            register_core_backend(get_core_backend("fast"))


class TestGPUConfigShim:
    def test_reference_core_true_warns_and_normalizes(self):
        with pytest.deprecated_call():
            config = make_fast_config(reference_core=True)
        assert config.core_backend == "reference"
        # The stored boolean resets so the repr (and therefore the store
        # fingerprint) has one canonical form.
        assert config.reference_core is False

    def test_shim_repr_matches_canonical_form(self):
        with pytest.deprecated_call():
            shim = make_fast_config(reference_core=True)
        assert repr(shim) == repr(make_fast_config(core_backend="reference"))

    def test_core_accepts_backend_name_string(self):
        config = make_fast_config(core="vector")
        assert config.core_backend == "vector"
        from repro.simt.coreconfig import CoreConfig

        assert isinstance(config.core, CoreConfig)

    def test_empty_core_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fast_config(core_backend="")

    def test_unknown_backend_fails_at_gpu_construction(self):
        config = make_fast_config(core_backend="no-such-core")
        with pytest.raises(ConfigurationError):
            GPU(config)

    def test_shim_runs_end_to_end_byte_identical(self):
        """Acceptance: ``GPUConfig(reference_core=True)`` still runs, and
        its results are byte-identical to ``core_backend="reference"``."""
        def run(config):
            gpu = GPU(config)
            workload = create_workload("vecadd", n=256, block_dim=64)
            results = workload.run(gpu)
            assert workload.verify(gpu)
            return results

        with pytest.deprecated_call():
            shim_config = make_fast_config(reference_core=True)
        shim = run(shim_config)
        named = run(make_fast_config(core_backend="reference"))
        assert len(shim) == len(named)
        for a, b in zip(shim, named):
            assert a.cycles == b.cycles
            assert (json.dumps(a.stats, sort_keys=True)
                    == json.dumps(b.stats, sort_keys=True))


class TestSessionShim:
    def test_session_core_conflict_rejected(self):
        with pytest.deprecated_call():
            with pytest.raises(ExperimentError):
                Session(core="vector", reference_core=True)

    def test_session_shim_warns_and_maps(self):
        with pytest.deprecated_call():
            session = Session(reference_core=True)
        assert session.core == "reference"

    def test_parallel_executor_shim_warns_and_maps(self):
        from repro.experiments.parallel import ParallelExecutor

        with pytest.deprecated_call():
            executor = ParallelExecutor(jobs=1, reference_core=True)
        assert executor._core == "reference"

    def test_parallel_executor_core_conflict_rejected(self):
        from repro.experiments.parallel import ParallelExecutor

        with pytest.deprecated_call():
            with pytest.raises(ExperimentError):
                ParallelExecutor(jobs=1, core="fast", reference_core=True)

    def test_old_spec_dicts_round_trip(self):
        """Specs predate backends and never carried core fields; their
        dict form (and hash) is untouched by the backend redesign."""
        spec = Experiment.dynamic("gf100", "vecadd", n=256, block_dim=64)
        data = spec.to_dict()
        assert "core" not in data
        assert "reference_core" not in data
        rebuilt = Experiment.from_dict(data)
        assert rebuilt.spec_hash() == spec.spec_hash()
        assert rebuilt.to_dict() == data


class TestEstimatorLabelling:
    def test_estimator_payload_labelled(self):
        spec = Experiment.dynamic("gf100", "vecadd", n=256, block_dim=64)
        record = Session(cache=False, core="estimator").run(spec)
        assert record.payload["core"] == "estimator"
        assert record.payload["estimated_cycles"] is True

    @pytest.mark.parametrize("core", ["fast", "vector", "reference"])
    def test_exact_payloads_unlabelled(self, core):
        """Exact backends add no payload keys: byte-identity extends to
        records produced before backends existed."""
        spec = Experiment.dynamic("gf100", "vecadd", n=256, block_dim=64)
        record = Session(cache=False, core=core).run(spec)
        assert "core" not in record.payload
        assert "estimated_cycles" not in record.payload


class TestBackendOptions:
    """The first-class backend-options surface (ISSUE 10 tentpole)."""

    def test_estimator_declares_time_quantum(self):
        backend = get_core_backend("estimator")
        assert [option.name for option in backend.options] == ["time_quantum"]
        option = backend.options[0]
        assert option.type is int
        assert option.default is None  # adaptive
        assert option.description

    def test_exact_backends_declare_no_options(self):
        for name in ("reference", "fast", "vector"):
            assert get_core_backend(name).options == ()

    def test_unknown_option_names_backend_and_key(self):
        from repro.simt.backend import validate_core_options

        with pytest.raises(ConfigurationError) as err:
            validate_core_options("estimator", {"quantum": 8})
        message = str(err.value)
        assert "estimator" in message
        assert "quantum" in message
        assert "time_quantum" in message  # lists the accepted options

    def test_config_rejects_unknown_option_eagerly(self):
        """The bad key fails at config construction, not first run."""
        with pytest.raises(ConfigurationError, match="time_quantum"):
            make_fast_config(core_backend="vector",
                             core_options={"time_quantum": 8})

    def test_config_coerces_and_sorts_options(self):
        config = make_fast_config(core_backend="estimator",
                                  core_options={"time_quantum": "16"})
        assert config.core_options == {"time_quantum": 16}

    def test_unregistered_backend_defers_option_validation(self):
        """Unknown backends keep their options; the full unknown-backend
        diagnostic fires at GPU construction as before."""
        config = make_fast_config(core_backend="someday",
                                  core_options={"x": 1})
        assert config.core_options == {"x": 1}
        with pytest.raises(ConfigurationError, match="someday"):
            GPU(config)

    def test_option_reaches_ldst_unit(self):
        gpu = GPU(make_fast_config(core_backend="estimator",
                                   core_options={"time_quantum": 16}))
        assert all(sm.ldst.time_quantum == 16 for sm in gpu.sms)

    def test_default_quantum_is_adaptive(self):
        from repro.simt.vector import adaptive_time_quantum

        gpu = GPU(make_fast_config(core_backend="estimator"))
        expected = adaptive_time_quantum(gpu.memory_system)
        assert all(sm.ldst.time_quantum == expected for sm in gpu.sms)

    def test_adaptive_quantum_scales_with_latencies(self):
        """Slower memory quantizes coarser — the quantum tracks the
        fastest service path, not a fixed cycle count."""
        from repro.simt.vector import adaptive_time_quantum

        base = GPU(make_fast_config(core_backend="estimator"))
        slowed = GPU(make_fast_config(core_backend="estimator").derive({
            "partition.l2.hit_latency": 197,
            "partition.dram.service_pad": 548,
        }))
        fast_quantum = adaptive_time_quantum(base.memory_system)
        slow_quantum = adaptive_time_quantum(slowed.memory_system)
        assert slow_quantum > fast_quantum
        assert slow_quantum == 8  # the calibrated presets' long-tested value


class TestParseCoreSpec:
    """CLI core specs: ``name`` or ``name:key=value[,key=value...]``."""

    def test_plain_name(self):
        from repro.simt.backend import parse_core_spec

        assert parse_core_spec("fast") == ("fast", {})

    def test_single_option(self):
        from repro.simt.backend import parse_core_spec

        assert parse_core_spec("estimator:time_quantum=16") == (
            "estimator", {"time_quantum": "16"})

    def test_multiple_options(self):
        from repro.simt.backend import parse_core_spec

        name, options = parse_core_spec("x:a=1,b=2")
        assert name == "x"
        assert options == {"a": "1", "b": "2"}

    @pytest.mark.parametrize("spec", [":a=1", "estimator:foo",
                                      "estimator:=5", "estimator:"])
    def test_malformed_specs_rejected(self, spec):
        from repro.simt.backend import parse_core_spec

        with pytest.raises(ConfigurationError):
            parse_core_spec(spec)


class TestShimUniformity:
    """All three ``reference_core`` shims share one helper and one
    message shape: ``"<owner> is deprecated; use <replacement>"``."""

    def test_gpu_config_shim_message(self):
        with pytest.warns(DeprecationWarning,
                          match=r"GPUConfig\(reference_core=True\) is "
                                r"deprecated; use core_backend='reference'"):
            make_fast_config(reference_core=True)

    def test_session_shim_message(self):
        with pytest.warns(DeprecationWarning,
                          match=r"Session\(reference_core=True\) is "
                                r"deprecated; use core='reference'"):
            Session(reference_core=True)

    def test_parallel_executor_shim_message(self):
        from repro.experiments.parallel import ParallelExecutor

        with pytest.warns(DeprecationWarning,
                          match=r"ParallelExecutor\(reference_core=True\) is "
                                r"deprecated; use core='reference'"):
            ParallelExecutor(jobs=1, reference_core=True)
