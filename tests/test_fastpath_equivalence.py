"""Golden equivalence tests across the registered simulation cores.

The simulator ships several core backends (see :mod:`repro.simt.backend`):
the straight-line ``reference`` loop, the event-skipped ``fast`` core,
and the batch ``vector`` core.  All three are registered *exact* and must
be **byte-identical** on every result; the ``estimator`` backend is
registered approximate and must stay inside its documented error bound.
These tests pin those properties:

* every registered workload, run on a calibrated preset, produces the
  same :class:`KernelResult` sequence (cycles, instructions, and the full
  stats dict) on every exact core;
* every registered GPU configuration agrees across the exact cores;
* hypothesis-generated random small kernels (arithmetic hazard chains,
  divergent branches, global/shared memory traffic, barriers) agree;
* the ``estimator`` core verifies, reports exact instruction counts, and
  its cycle counts stay within the documented two-sided 10% bound;
* ``next_event_time`` never reports an event in the past — the invariant
  the idle fast-forward and the wake-time cache both rely on.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import Experiment, Session
from repro.gpu import GPU, available_configs, get_config
from repro.isa.builder import KernelBuilder
from repro.memory.globalmem import WORD_SIZE
from repro.simt.backend import available_core_backends, get_core_backend
from repro.workloads import create_workload
from tests.conftest import make_fast_config

#: Every backend registered exact must hold byte-identity; computed from
#: the registry so a newly registered exact backend is pinned
#: automatically.
EXACT_CORES = tuple(
    name for name in available_core_backends()
    if get_core_backend(name).exact
)

#: Documented relative cycle error bound for the ``estimator`` backend
#: (see README "Simulation backends"; measured worst case is ~9.3%).
ESTIMATOR_CYCLE_ERROR_BOUND = 0.10

#: The estimator's error is additive: at most ``quantum - 1`` cycles per
#: memory completion on the critical path.  On calibrated presets (real
#: 100+-cycle memory latencies) that amortizes into the relative bound;
#: on the tiny unit-test configuration the quantum rivals the memory
#: latency itself, so short-kernel checks allow one quantum of absolute
#: slack per serial dependent-load chain step instead.  Documented in
#: the README alongside the 10% figure.

#: Small problem sizes so the (slow) reference runs stay cheap.  The
#: coverage test below fails if a newly registered workload is missing.
WORKLOAD_PARAMS = {
    "vecadd": {"n": 512, "block_dim": 64},
    "bfs": {"num_nodes": 192, "avg_degree": 6, "block_dim": 64, "seed": 7},
    "matmul": {"n": 16, "block_dim": 64},
    "reduction": {"n": 1024, "block_dim": 128},
    "spmv": {"num_rows": 96, "nnz_per_row": 6},
    "stencil": {"n": 512, "block_dim": 128},
    "pointer_chase": {"footprint_bytes": 4096, "stride_bytes": 128,
                      "n_accesses": 64},
    "microbench": {"ilp": 2, "mlp": 2, "arith_per_load": 2,
                   "footprint": 4096, "ctas": 2, "warps_per_cta": 2,
                   "iters": 12, "divergence": 0.5},
    "microbench_mlp4": {"footprint": 8192, "ctas": 2, "iters": 12},
    # Trace bundles fix their geometry and inputs on disk and take no
    # constructor parameters.
    "evenodd": {},
    "gather": {},
    "reverse": {},
    "saturate": {},
    "saxpy": {},
    "stencil_bundle": {},
    "vecadd_bundle": {},
}


def run_workload(config, workload_name, params):
    gpu = GPU(config)
    workload = create_workload(workload_name, **params)
    results = workload.run(gpu)
    assert workload.verify(gpu)
    return results


def assert_results_identical(fast_results, reference_results):
    assert len(fast_results) == len(reference_results)
    for fast, reference in zip(fast_results, reference_results):
        assert fast.kernel_name == reference.kernel_name
        assert fast.cycles == reference.cycles
        assert fast.instructions == reference.instructions
        assert fast.start_cycle == reference.start_cycle
        assert fast.end_cycle == reference.end_cycle
        assert fast.stats == reference.stats
        # Byte-identical, not merely dict-equal.
        assert (json.dumps(fast.stats, sort_keys=True)
                == json.dumps(reference.stats, sort_keys=True))


def compare_cores(config_name, workload_name, params, cores=None):
    """Run on every exact core and assert all results byte-identical."""
    config = get_config(config_name)
    baseline = None
    for core in (cores or EXACT_CORES):
        results = run_workload(config.replace(core_backend=core),
                               workload_name, params)
        if baseline is None:
            baseline = results
        else:
            assert_results_identical(results, baseline)


class TestExactCoreRegistry:
    def test_exact_core_set(self):
        """The byte-identity class covers exactly the cores we prove."""
        assert set(EXACT_CORES) == {"reference", "fast", "vector"}

    def test_estimator_registered_approximate(self):
        assert not get_core_backend("estimator").exact


class TestWorkloadEquivalence:
    def test_every_registered_workload_has_golden_params(self):
        from repro.workloads import available_workloads

        missing = set(available_workloads()) - set(WORKLOAD_PARAMS)
        assert not missing, (
            f"add golden equivalence parameters for {sorted(missing)}"
        )

    @pytest.mark.parametrize("workload_name", sorted(WORKLOAD_PARAMS))
    def test_workload_identical_on_all_exact_cores(self, workload_name):
        compare_cores("gf100", workload_name, WORKLOAD_PARAMS[workload_name])


class TestConfigEquivalence:
    @pytest.mark.parametrize("config_name", sorted(available_configs()))
    def test_config_identical_on_all_exact_cores(self, config_name):
        compare_cores(config_name, "vecadd", {"n": 256, "block_dim": 64})

    @pytest.mark.parametrize("config_name", ["gt200", "gm107"])
    def test_no_l1_configs_on_bfs(self, config_name):
        compare_cores(config_name, "bfs",
                      {"num_nodes": 128, "avg_degree": 5, "block_dim": 64,
                       "seed": 11})

    @pytest.mark.parametrize("scheduler", ["lrr", "gto"])
    def test_both_warp_schedulers(self, scheduler):
        import dataclasses

        base = make_fast_config(
            core=dataclasses.replace(make_fast_config().core,
                                     warp_scheduler=scheduler))
        baseline = run_workload(base, "bfs",
                                {"num_nodes": 128, "avg_degree": 5,
                                 "block_dim": 64, "seed": 5})
        for core in EXACT_CORES:
            if core == base.core_backend:
                continue
            other = run_workload(base.replace(core_backend=core), "bfs",
                                 {"num_nodes": 128, "avg_degree": 5,
                                  "block_dim": 64, "seed": 5})
            assert_results_identical(other, baseline)


class TestSessionEquivalence:
    @pytest.mark.parametrize("core",
                             [core for core in ("reference", "vector")])
    def test_session_payloads_byte_identical(self, core):
        spec = Experiment.dynamic("gf100", "vecadd", n=256, block_dim=64)
        fast = Session(cache=False).run(spec)
        other = Session(cache=False, core=core).run(spec)
        assert (json.dumps(fast.payload, sort_keys=True)
                == json.dumps(other.payload, sort_keys=True))

    def test_session_core_rewrites_configs(self):
        session = Session(core="vector")
        assert session.resolve_config("gf100").core_backend == "vector"
        assert Session().resolve_config("gf100").core_backend == "fast"

    def test_session_reference_core_shim(self):
        """Deprecated ``reference_core=True`` still selects the
        reference backend, byte-identically to ``core="reference"``."""
        spec = Experiment.dynamic("gf100", "vecadd", n=256, block_dim=64)
        with pytest.deprecated_call():
            shim = Session(cache=False, reference_core=True)
        assert shim.resolve_config("gf100").core_backend == "reference"
        named = Session(cache=False, core="reference")
        assert (json.dumps(shim.run(spec).payload, sort_keys=True)
                == json.dumps(named.run(spec).payload, sort_keys=True))


def build_random_kernel(ops, block_dim):
    """Assemble a small kernel from a drawn op list.

    ``r0`` holds each thread's private global-memory slot (two words per
    thread so a drawn offset of one word stays in bounds); ``r1``-``r3``
    form an arithmetic/hazard chain that the drawn ops read and write.
    """
    builder = KernelBuilder("random")
    base = builder.param("base")
    slot = builder.reg()
    builder.imad(slot, builder.gtid, 2 * WORD_SIZE, base)
    regs = [builder.reg() for _ in range(3)]
    builder.mov(regs[0], builder.tid)
    builder.mov(regs[1], builder.laneid)
    builder.mov(regs[2], 1.0)
    shared = builder.shared_alloc(block_dim * WORD_SIZE)
    shared_addr = builder.reg()
    builder.imad(shared_addr, builder.tid, WORD_SIZE, shared)
    predicate = builder.pred()
    for kind, a, b in ops:
        dst = regs[a]
        src = regs[b]
        if kind == "iadd":
            builder.iadd(dst, src, regs[(b + 1) % 3])
        elif kind == "ffma":
            builder.ffma(dst, src, 2.0, regs[(a + 1) % 3])
        elif kind == "sfu":
            builder.fsqrt(dst, src)
        elif kind == "load":
            builder.ld_global(dst, slot, offset=(b % 2) * WORD_SIZE)
        elif kind == "store":
            builder.st_global(slot, src, offset=(a % 2) * WORD_SIZE)
        elif kind == "shared":
            builder.st_shared(shared_addr, src)
            builder.bar()
            builder.ld_shared(dst, shared_addr)
        elif kind == "branch":
            builder.setp(predicate, "lt", builder.laneid, 8 + 4 * a)
            with builder.if_(predicate):
                builder.iadd(dst, src, 3)
        elif kind == "bar":
            builder.bar()
    return builder.build()


OP_STRATEGY = st.tuples(
    st.sampled_from(["iadd", "ffma", "sfu", "load", "store", "shared",
                     "branch", "bar"]),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=2),
)


class TestRandomKernelEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(OP_STRATEGY, min_size=1, max_size=10),
        grid_dim=st.integers(min_value=1, max_value=3),
        block_dim=st.sampled_from([32, 64]),
    )
    def test_random_kernel_identical_on_all_exact_cores(self, ops, grid_dim,
                                                        block_dim):
        program = build_random_kernel(ops, block_dim)

        def run(core):
            gpu = GPU(make_fast_config(core_backend=core))
            base = gpu.allocate(grid_dim * block_dim * 2 * WORD_SIZE)
            return gpu.launch(program, grid_dim=grid_dim,
                              block_dim=block_dim, params={"base": base})

        baseline = run(EXACT_CORES[0])
        for core in EXACT_CORES[1:]:
            assert_results_identical([run(core)], [baseline])


#: Strategy over small generated-microbench specs: every axis moves, so
#: the cores are compared across ILP chain splitting, MLP load bursts,
#: divergent half-warps, and varying occupancy.
MICROBENCH_AXES = st.fixed_dictionaries({
    "ilp": st.integers(min_value=1, max_value=4),
    "mlp": st.integers(min_value=1, max_value=4),
    "arith_per_load": st.integers(min_value=0, max_value=4),
    "stride": st.sampled_from([4, 64, 128]),
    "footprint": st.sampled_from([1024, 4096]),
    "divergence": st.sampled_from([0.0, 0.5, 1.0]),
    "ctas": st.integers(min_value=1, max_value=2),
    "warps_per_cta": st.integers(min_value=1, max_value=2),
    "iters": st.integers(min_value=1, max_value=16),
})


class TestMicrobenchEquivalence:
    """Generated microbenchmarks must be byte-identical across cores.

    This extends the golden-equivalence suite to hypothesis-random
    :class:`~repro.workloads.MicrobenchSpec` axes: whatever kernel the
    generator emits, every exact core must agree on the full
    :class:`KernelResult` (cycles, instructions, stats).
    """

    @settings(max_examples=12, deadline=None)
    @given(axes=MICROBENCH_AXES)
    def test_random_spec_identical_on_all_exact_cores(self, axes):
        baseline = run_workload(make_fast_config(), "microbench", axes)
        for core in EXACT_CORES:
            if core == "fast":
                continue
            other = run_workload(make_fast_config(core_backend=core),
                                 "microbench", axes)
            assert_results_identical(other, baseline)

    def test_generated_variant_identical_on_calibrated_preset(self):
        compare_cores("gf106", "microbench_mlp4",
                      WORKLOAD_PARAMS["microbench_mlp4"])


#: Workloads whose estimator error is checked against the documented
#: bound.  bfs is the measured worst case (~9.3% on gf100).
ESTIMATOR_WORKLOADS = ["vecadd", "bfs", "microbench", "stencil"]


class TestEstimatorBounds:
    """The ``estimator`` backend's accuracy contract.

    It is *not* byte-identical (it quantizes memory completion times to
    coarsen the event grid); the contract is: results verify, instruction
    counts are exact, and cycle counts stay within
    :data:`ESTIMATOR_CYCLE_ERROR_BOUND` of the exact cores.  The bound is
    two-sided: individual completions are only ever delayed, but the
    induced interleaving change is not monotone, so end-to-end counts
    usually land high yet can come in slightly under.
    """

    @pytest.mark.parametrize("workload_name", ESTIMATOR_WORKLOADS)
    def test_estimator_within_documented_bound(self, workload_name):
        params = WORKLOAD_PARAMS[workload_name]
        config = get_config("gf100")
        exact = run_workload(config, workload_name, params)
        estimated = run_workload(config.replace(core_backend="estimator"),
                                 workload_name, params)
        assert len(estimated) == len(exact)
        for est, ref in zip(estimated, exact):
            assert est.instructions == ref.instructions
            error = abs(est.cycles - ref.cycles) / ref.cycles
            assert error <= ESTIMATOR_CYCLE_ERROR_BOUND, (
                f"estimator cycle error {error:.2%} exceeds the "
                f"documented {ESTIMATOR_CYCLE_ERROR_BOUND:.0%} bound on "
                f"{workload_name}"
            )

    @settings(max_examples=8, deadline=None)
    @given(axes=MICROBENCH_AXES)
    def test_estimator_bound_on_random_specs(self, axes):
        from repro.simt.vector import ESTIMATOR_TIME_QUANTUM

        # One quantized memory completion per serial chain step (the
        # microbench issues `iters` dependent loads back to back, plus
        # the initial load and the epilogue store), each delayed by less
        # than one quantum.
        slack = ESTIMATOR_TIME_QUANTUM * (axes["iters"] + 2)
        exact = run_workload(make_fast_config(), "microbench", axes)
        estimated = run_workload(
            make_fast_config(core_backend="estimator"), "microbench", axes)
        for est, ref in zip(estimated, exact):
            assert est.instructions == ref.instructions
            assert (abs(est.cycles - ref.cycles)
                    <= ref.cycles * ESTIMATOR_CYCLE_ERROR_BOUND + slack)


class TestNextEventTimeInvariant:
    @pytest.mark.parametrize("core", ["fast", "vector"])
    def test_next_event_time_never_in_the_past(self, monkeypatch, core):
        """Every component's next event is strictly after ``now``.

        Checked live at every idle fast-forward decision of a real
        (memory-heavy) run, which is exactly where a stale or past event
        time would corrupt the simulation clock.
        """
        from repro.gpu.gpu import GPU as GPUClass

        checked_cycles = []

        def checked(gpu, issued):
            now = gpu.cycle
            components = [gpu.memory_system,
                          gpu.memory_system.request_network,
                          gpu.memory_system.reply_network]
            components.extend(gpu.memory_system.partitions)
            components.extend(
                partition.dram for partition in gpu.memory_system.partitions)
            components.extend(
                partition.l2 for partition in gpu.memory_system.partitions
                if partition.l2 is not None)
            components.extend(gpu.sms)
            components.extend(sm.ldst for sm in gpu.sms)
            for component in components:
                event_time = component.next_event_time(now)
                assert event_time is None or event_time >= now + 1, (
                    f"{type(component).__name__} reported event at "
                    f"{event_time} when now={now}"
                )
            checked_cycles.append(now)

        # _clock_check_hook is the dedicated seam: it fires at every
        # clock-advance decision of both cycle loops (the generic one
        # and the vector backends' device-skip loop, which inlines its
        # clock advance and never calls _advance_clock).
        monkeypatch.setattr(GPUClass, "_clock_check_hook",
                            staticmethod(checked))
        run_workload(make_fast_config(core_backend=core), "bfs",
                     {"num_nodes": 128, "avg_degree": 5, "block_dim": 64,
                      "seed": 17})
        assert checked_cycles


def build_wide_register_kernel():
    """A kernel whose register indices overflow the 64-bit scoreboard mask.

    The vector core's array scheduler requires every register index to
    fit a 64-bit readiness bitmask; this program allocates past that
    width, forcing the per-warp scalar fallback while the batched LD/ST
    unit still services its loads and stores.
    """
    builder = KernelBuilder("wide-regs")
    base = builder.param("base")
    slot = builder.reg()
    builder.imad(slot, builder.gtid, WORD_SIZE, base)
    regs = [builder.reg() for _ in range(70)]
    builder.mov(regs[0], builder.tid)
    for dst, src in zip(regs[1:], regs):
        builder.iadd(dst, src, 1)
    builder.ld_global(regs[-1], slot)
    builder.iadd(regs[-1], regs[-1], 1)
    builder.st_global(slot, regs[-1])
    return builder.build()


def build_divergent_load_kernel():
    """Loads and stores under a half-warp divergence mask.

    Lanes below 16 load/increment/store their slot; the upper half-warp
    runs a shorter arithmetic-only path.  The batched LD/ST unit must
    coalesce the 16 active lanes exactly like the scalar unit does.
    """
    builder = KernelBuilder("divergent-loads")
    base = builder.param("base")
    slot = builder.reg()
    builder.imad(slot, builder.gtid, WORD_SIZE, base)
    value = builder.reg()
    builder.mov(value, builder.laneid)
    predicate = builder.pred()
    builder.setp(predicate, "lt", builder.laneid, 16)
    with builder.if_(predicate):
        builder.ld_global(value, slot)
        builder.iadd(value, value, 1)
        builder.st_global(slot, value)
    builder.iadd(value, value, 2)
    builder.st_global(slot, value)
    return builder.build()


class TestBatchedLdstEdgeCases:
    """Byte-identity on the batched LD/ST unit's documented edge paths.

    The ``vector`` core pairs with :class:`BatchedLoadStoreUnit`; each
    case below drives one of its fallback or stall paths — scoreboard
    mask overflow, candidate sets at/below the scalar-evaluation
    threshold, divergent half-warp loads, and MSHR-full stalls — and
    pins the full result (cycles, instructions, stats) against the
    scalar cores.
    """

    def _compare_program(self, program, config, grid_dim=2, block_dim=64):
        def run(core):
            gpu = GPU(config.replace(core_backend=core))
            base = gpu.allocate(grid_dim * block_dim * WORD_SIZE)
            return gpu.launch(program, grid_dim=grid_dim,
                              block_dim=block_dim, params={"base": base})

        baseline = run(EXACT_CORES[0])
        for core in EXACT_CORES[1:]:
            assert_results_identical([run(core)], [baseline])

    def test_mask_overflow_scalar_fallback(self):
        from repro.simt.vector import VectorCore

        program = build_wide_register_kernel()
        # The case only exists while the program genuinely overflows
        # the mask; this guards the test against builder changes.
        assert not VectorCore._vectorizable(program)
        self._compare_program(program, make_fast_config())

    def test_divergent_half_warp_loads(self):
        self._compare_program(build_divergent_load_kernel(),
                              make_fast_config())

    @pytest.mark.parametrize("warps_per_cta,ctas", [(1, 1), (2, 2)])
    def test_candidate_sets_at_or_below_scalar_threshold(self,
                                                         warps_per_cta,
                                                         ctas):
        """Tiny occupancy keeps every candidate set on the scalar path."""
        from repro.simt.vector import _SCALAR_EVAL_THRESHOLD

        assert warps_per_cta * ctas * 32 // 64 <= _SCALAR_EVAL_THRESHOLD
        params = {"ilp": 2, "mlp": 2, "arith_per_load": 2,
                  "footprint": 4096, "ctas": ctas,
                  "warps_per_cta": warps_per_cta, "iters": 8}
        config = make_fast_config()
        baseline = run_workload(config, "microbench", params)
        for core in EXACT_CORES:
            if core == config.core_backend:
                continue
            other = run_workload(config.replace(core_backend=core),
                                 "microbench", params)
            assert_results_identical(other, baseline)

    def test_candidate_sets_above_scalar_threshold(self):
        """One scheduler holding 24 warps exercises the array path."""
        from repro.simt.vector import _SCALAR_EVAL_THRESHOLD

        config = make_fast_config().derive({"num_sms": 1,
                                            "core.num_schedulers": 1})
        params = {"ilp": 2, "mlp": 2, "arith_per_load": 1,
                  "footprint": 8192, "ctas": 3, "warps_per_cta": 8,
                  "iters": 8}
        assert 3 * 8 > _SCALAR_EVAL_THRESHOLD
        baseline = run_workload(config, "microbench", params)
        for core in EXACT_CORES:
            if core == config.core_backend:
                continue
            other = run_workload(config.replace(core_backend=core),
                                 "microbench", params)
            assert_results_identical(other, baseline)

    def test_mshr_full_stalls(self):
        """A single MSHR entry forces the full-stall path on misses."""
        config = make_fast_config().derive({"core.l1.mshr_entries": 1,
                                            "core.l1.mshr_max_merge": 1})
        params = {"ilp": 1, "mlp": 4, "arith_per_load": 0,
                  "stride": 128, "footprint": 8192, "ctas": 2,
                  "warps_per_cta": 2, "iters": 8}
        baseline = run_workload(config, "microbench", params)
        # The stall path must actually fire for this test to mean
        # anything.
        stats = baseline[0].stats
        assert any("mshr_full_stall_cycles" in key and value > 0
                   for key, value in stats.items()), sorted(stats)
        for core in EXACT_CORES:
            if core == config.core_backend:
                continue
            other = run_workload(config.replace(core_backend=core),
                                 "microbench", params)
            assert_results_identical(other, baseline)
