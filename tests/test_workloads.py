"""Workload tests: every bundled workload must verify on the simulator."""

import numpy as np
import pytest

from repro.gpu import GPU
from repro.workloads import (
    BFSWorkload,
    MatMulWorkload,
    PointerChaseWorkload,
    ReductionWorkload,
    SpMVWorkload,
    StencilWorkload,
    VecAddWorkload,
    available_workloads,
    create_workload,
    grid_graph,
    random_graph,
    reference_bfs,
    setup_pointer_chain,
)
from repro.workloads.pointer_chase import build_local_chase_kernel
from tests.conftest import make_fast_config


@pytest.fixture
def gpu():
    return GPU(make_fast_config())


class TestGraphGeneration:
    def test_random_graph_shape(self):
        graph = random_graph(100, avg_degree=5, seed=1)
        assert graph.num_nodes == 100
        assert graph.num_edges >= 100 * 5
        assert graph.row_offsets[0] == 0
        assert graph.row_offsets[-1] == graph.num_edges
        assert (np.diff(graph.row_offsets) >= 0).all()
        assert (graph.col_indices < 100).all()

    def test_random_graph_connected_reaches_all_nodes(self):
        graph = random_graph(200, avg_degree=2, seed=3, connected=True)
        levels = reference_bfs(graph, 0)
        assert (levels >= 0).all()

    def test_random_graph_deterministic_by_seed(self):
        first = random_graph(50, 4, seed=9)
        second = random_graph(50, 4, seed=9)
        assert np.array_equal(first.col_indices, second.col_indices)

    def test_grid_graph_structure(self):
        graph = grid_graph(4)
        assert graph.num_nodes == 16
        assert graph.degree(0) == 2          # corner
        assert graph.degree(5) == 4          # interior
        levels = reference_bfs(graph, 0)
        assert levels[15] == 6               # manhattan distance

    def test_reference_bfs_unreachable_marked(self):
        graph = random_graph(10, avg_degree=0, seed=1, connected=False)
        levels = reference_bfs(graph, 0)
        assert levels[0] == 0
        assert (levels[1:] == -1).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_graph(0)
        with pytest.raises(ValueError):
            grid_graph(0)


class TestWorkloadRegistry:
    def test_registry_contents(self):
        names = available_workloads()
        assert "bfs" in names and "vecadd" in names
        assert "microbench" in names and "microbench_mlp4" in names
        assert "saxpy" in names  # packaged trace-bundle corpus
        assert len(names) == 16

    def test_create_by_name(self):
        workload = create_workload("vecadd", n=64)
        assert isinstance(workload, VecAddWorkload)
        assert workload.n == 64

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            create_workload("raytracer")


class TestSimpleWorkloads:
    def test_vecadd(self, gpu):
        workload = VecAddWorkload(n=500, block_dim=64)
        workload.run_verified(gpu)

    def test_stencil(self, gpu):
        workload = StencilWorkload(n=500, block_dim=64)
        workload.run_verified(gpu)

    def test_reduction(self, gpu):
        workload = ReductionWorkload(n=1024, block_dim=64)
        results = workload.run(gpu)
        assert len(results) == 2
        assert workload.verify(gpu)

    def test_reduction_single_cta(self, gpu):
        workload = ReductionWorkload(n=64, block_dim=64)
        workload.run(gpu)
        assert workload.verify(gpu)

    def test_reduction_rejects_non_power_of_two_block(self):
        with pytest.raises(Exception):
            ReductionWorkload(n=128, block_dim=100)

    def test_spmv(self, gpu):
        workload = SpMVWorkload(num_rows=200, nnz_per_row=6, block_dim=64)
        workload.run_verified(gpu)

    def test_matmul(self, gpu):
        workload = MatMulWorkload(n=12, block_dim=64)
        workload.run_verified(gpu)

    def test_workload_total_cycles_helper(self, gpu):
        workload = VecAddWorkload(n=128, block_dim=64)
        results = workload.run(gpu)
        assert workload.total_cycles(results) == sum(r.cycles for r in results)


class TestBFS:
    def test_bfs_on_random_graph(self, gpu):
        workload = BFSWorkload(num_nodes=300, avg_degree=5, block_dim=64)
        results = workload.run(gpu)
        assert workload.verify(gpu)
        assert len(results) == workload.levels_run
        assert workload.levels_run >= 2

    def test_bfs_on_grid_graph(self, gpu):
        graph = grid_graph(8)
        workload = BFSWorkload(graph=graph, block_dim=64)
        workload.run(gpu)
        assert workload.verify(gpu)
        levels = workload.device_levels(gpu)
        assert levels[-1] == 14

    def test_bfs_max_levels_limits_iterations(self, gpu):
        workload = BFSWorkload(num_nodes=300, avg_degree=4, block_dim=64)
        results = workload.run(gpu, max_levels=1)
        assert len(results) == 1

    def test_bfs_generates_memory_traffic(self, gpu):
        workload = BFSWorkload(num_nodes=200, avg_degree=5, block_dim=64)
        workload.run(gpu)
        assert len(gpu.tracker.read_requests()) > 100
        assert len(gpu.tracker.global_loads()) > 50


class TestPointerChase:
    def test_chain_setup_is_cyclic(self, gpu):
        base, count = setup_pointer_chain(gpu, footprint_bytes=1024,
                                          stride_bytes=128)
        assert count == 8
        pointer = base
        visited = []
        for _ in range(count):
            visited.append(pointer)
            pointer = int(gpu.global_memory.read_word(pointer))
        assert pointer == base
        assert len(set(visited)) == count

    def test_chain_setup_validation(self, gpu):
        with pytest.raises(Exception):
            setup_pointer_chain(gpu, footprint_bytes=64, stride_bytes=128)
        with pytest.raises(Exception):
            setup_pointer_chain(gpu, footprint_bytes=1024, stride_bytes=3)

    def test_global_chase_workload_verifies(self, gpu):
        workload = PointerChaseWorkload(footprint_bytes=2048, stride_bytes=128,
                                        n_accesses=64)
        workload.run_verified(gpu)

    def test_chase_is_serialised(self, gpu):
        # A dependent chain of N accesses must take at least N * L1-hit
        # latency cycles.
        workload = PointerChaseWorkload(footprint_bytes=1024, stride_bytes=128,
                                        n_accesses=64)
        results = workload.run(gpu)
        config = gpu.config
        minimum = 64 * (config.core.l1.hit_latency)
        assert results[0].cycles > minimum

    def test_local_chase_kernel_builds(self):
        program = build_local_chase_kernel(2048)
        assert program.local_bytes == 2048
        assert program.param_names == ("stride", "n_elements", "n_accesses",
                                       "sink")
