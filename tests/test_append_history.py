"""Tests for the benchmark trend appender (benchmarks/append_history)."""

import json

import pytest

from benchmarks.append_history import append_entry, build_entry, main


def write_bench(path, means):
    path.write_text(json.dumps({
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ],
    }))


MEANS = {"bench/a.py::test_a": 1.23456789, "bench/b.py::test_b": 0.5}


class TestBuildEntry:
    def test_compact_means_and_fields(self):
        entry = build_entry(MEANS, commit="abc123", date="2026-07-30")
        assert entry["date"] == "2026-07-30"
        assert entry["commit"] == "abc123"
        assert entry["benchmarks"]["bench/a.py::test_a"] == 1.23457
        assert entry["geomean_speedup_vs_baseline"] is None

    def test_date_defaults_to_today(self):
        assert len(build_entry(MEANS)["date"]) == 10

    def test_geomean_speedup_against_baseline(self):
        baseline = {name: mean * 2.0 for name, mean in MEANS.items()}
        entry = build_entry(MEANS, baseline=baseline)
        assert entry["geomean_speedup_vs_baseline"] == pytest.approx(2.0)
        # No overlap: the statistic is undefined, not a crash.
        entry = build_entry(MEANS, baseline={"other": 1.0})
        assert entry["geomean_speedup_vs_baseline"] is None


class TestAppendEntry:
    def test_appends_one_canonical_line(self, tmp_path):
        history = tmp_path / "history" / "trend.jsonl"
        append_entry(build_entry(MEANS, date="2026-07-30"), str(history))
        append_entry(build_entry(MEANS, date="2026-07-31"), str(history))
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["date"] == "2026-07-30"
        # Canonical form: sorted keys, compact separators.
        assert lines[0] == json.dumps(first, sort_keys=True,
                                      separators=(",", ":"))


class TestMain:
    def test_end_to_end(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        history = tmp_path / "trend.jsonl"
        write_bench(bench, MEANS)
        write_bench(baseline, {name: mean * 2.0
                               for name, mean in MEANS.items()})
        assert main(["--input", str(bench), "--history", str(history),
                     "--commit", "deadbeef", "--date", "2026-07-30",
                     "--baseline", str(baseline)]) == 0
        entry = json.loads(history.read_text().splitlines()[0])
        assert entry["commit"] == "deadbeef"
        assert entry["geomean_speedup_vs_baseline"] == pytest.approx(2.0)
        assert "appended trend entry (2 benchmark(s)" in (
            capsys.readouterr().out)

    def test_bad_input_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(["--input", str(tmp_path / "missing.json"),
                  "--history", str(tmp_path / "trend.jsonl")])
        assert info.value.code == 2
