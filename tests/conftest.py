"""Shared fixtures for the test suite.

Unit tests use small, fast GPU configurations so the whole suite stays
quick; the integration tests that exercise the paper's analyses use the
calibrated presets but with reduced problem sizes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.tracker import LatencyTracker
from repro.gpu import GPU, fermi_gf100, get_config
from repro.gpu.config import GPUConfig
from repro.memory.address import AddressMapping
from repro.memory.cache import CacheGeometry
from repro.memory.dram import DRAMTiming
from repro.memory.interconnect import InterconnectConfig
from repro.memory.l2cache import L2SliceConfig
from repro.memory.partition import PartitionConfig
from repro.simt.coreconfig import CoreConfig, L1Config


def make_fast_config(name: str = "fast", **overrides) -> GPUConfig:
    """A small GPU configuration with short latencies for unit tests."""
    config = GPUConfig(
        name=name,
        description="small fast configuration for unit tests",
        num_sms=2,
        core=CoreConfig(
            num_schedulers=2,
            warp_scheduler="gto",
            alu_latency=4,
            sfu_latency=8,
            shared_latency=6,
            sm_base_latency=2,
            writeback_latency=1,
            l1=L1Config(
                enabled=True,
                cache_global=True,
                cache_local=True,
                geometry=CacheGeometry(8 * 1024, 128, 4, name="fast.l1"),
                hit_latency=4,
                mshr_entries=16,
                mshr_max_merge=4,
                miss_queue_size=8,
            ),
        ),
        interconnect=InterconnectConfig(latency=4, accept_per_cycle=1,
                                        output_queue_size=4, credit_limit=8),
        mapping=AddressMapping(num_partitions=2, partition_chunk=256,
                               row_bytes=1024, num_banks=4),
        partition=PartitionConfig(
            rop_latency=4,
            rop_queue_size=8,
            l2_enabled=True,
            l2=L2SliceConfig(
                geometry=CacheGeometry(16 * 1024, 128, 8, name="fast.l2"),
                hit_latency=8,
                mshr_entries=16,
                mshr_max_merge=4,
                input_queue_size=8,
            ),
            dram=DRAMTiming(t_rcd=6, t_rp=6, t_cas=6, burst_cycles=2,
                            service_pad=10, queue_size=16, num_banks=4,
                            scheduler="frfcfs"),
            return_queue_size=4,
        ),
        global_memory_bytes=8 * 1024 * 1024,
    )
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config


@pytest.fixture
def fast_config() -> GPUConfig:
    """Small, low-latency configuration for unit tests."""
    return make_fast_config()


@pytest.fixture
def fast_gpu(fast_config) -> GPU:
    """A GPU built from the fast unit-test configuration."""
    return GPU(fast_config)


@pytest.fixture
def gf100_gpu() -> GPU:
    """A GPU built from the calibrated Fermi GF100 preset."""
    return GPU(fermi_gf100())


@pytest.fixture
def tracker() -> LatencyTracker:
    """A fresh, enabled latency tracker."""
    return LatencyTracker()


@pytest.fixture(params=["gt200", "gf106", "gk104", "gm107"])
def generation_config(request) -> GPUConfig:
    """Each of the four Table I generation presets in turn."""
    return get_config(request.param)
