"""End-to-end kernel execution tests for the SM / GPU (functional + timing)."""

import numpy as np
import pytest

from repro.isa import KernelBuilder
from repro.utils.errors import SimulationError


def run_kernel(gpu, builder, grid_dim, block_dim, params=None):
    return gpu.launch(builder.build(), grid_dim=grid_dim, block_dim=block_dim,
                      params=params or {})


class TestArithmeticKernels:
    def test_store_global_thread_id(self, fast_gpu):
        builder = KernelBuilder("store_gtid")
        index, address = builder.reg(), builder.reg()
        out = builder.param("out")
        builder.mov(index, builder.gtid)
        builder.imad(address, index, 4, out)
        builder.st_global(address, index)
        out_dev = fast_gpu.allocate(4 * 256)
        run_kernel(fast_gpu, builder, 4, 64, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 256)
        assert np.array_equal(values, np.arange(256))

    def test_special_registers(self, fast_gpu):
        builder = KernelBuilder("specials")
        value, address = builder.reg(), builder.reg()
        out = builder.param("out")
        # out[gtid] = ctaid * 1000 + tid
        builder.imad(value, builder.ctaid, 1000, builder.tid)
        builder.imad(address, builder.gtid, 4, out)
        builder.st_global(address, value)
        out_dev = fast_gpu.allocate(4 * 128)
        run_kernel(fast_gpu, builder, 2, 64, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 128)
        expected = np.array([cta * 1000 + tid for cta in range(2)
                             for tid in range(64)])
        assert np.array_equal(values, expected)

    def test_dependent_arithmetic_chain(self, fast_gpu):
        builder = KernelBuilder("chain")
        a, b, address = builder.reg(), builder.reg(), builder.reg()
        out = builder.param("out")
        builder.mov(a, 3)
        builder.imul(a, a, 7)          # 21
        builder.iadd(a, a, 1)          # 22
        builder.shl(b, a, 2)           # 88
        builder.isub(b, b, a)          # 66
        builder.imad(address, builder.gtid, 4, out)
        builder.st_global(address, b)
        out_dev = fast_gpu.allocate(4 * 32)
        run_kernel(fast_gpu, builder, 1, 32, {"out": out_dev})
        assert fast_gpu.global_memory.read_word(out_dev) == 66

    def test_float_and_sfu_operations(self, fast_gpu):
        builder = KernelBuilder("floats")
        x, y, address = builder.reg(), builder.reg(), builder.reg()
        out = builder.param("out")
        builder.mov(x, 2.0)
        builder.fsqrt(y, 16.0)         # 4
        builder.fdiv(y, y, x)          # 2
        builder.ffma(y, y, 3.0, 1.0)   # 7
        builder.imad(address, builder.gtid, 4, out)
        builder.st_global(address, y)
        out_dev = fast_gpu.allocate(4 * 32)
        run_kernel(fast_gpu, builder, 1, 32, {"out": out_dev})
        assert fast_gpu.global_memory.read_word(out_dev) == 7.0


class TestControlFlowKernels:
    def test_predicated_execution(self, fast_gpu):
        builder = KernelBuilder("predicated")
        index, value, address = builder.reg(), builder.reg(), builder.reg()
        is_even = builder.pred()
        out = builder.param("out")
        builder.mov(index, builder.gtid)
        builder.irem(value, index, 2)
        builder.setp(is_even, "eq", value, 0)
        builder.mov(value, 100, pred=is_even)
        builder.mov(value, 200, pred=is_even, negate=True)
        builder.imad(address, index, 4, out)
        builder.st_global(address, value)
        out_dev = fast_gpu.allocate(4 * 64)
        run_kernel(fast_gpu, builder, 1, 64, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 64)
        assert np.array_equal(values, [100 if i % 2 == 0 else 200
                                       for i in range(64)])

    def test_divergent_if_else(self, fast_gpu):
        builder = KernelBuilder("diverge")
        index, value, address = builder.reg(), builder.reg(), builder.reg()
        in_upper_half = builder.pred()
        out = builder.param("out")
        builder.mov(index, builder.gtid)
        builder.setp(in_upper_half, "ge", index, 16)
        with builder.if_else(in_upper_half) as otherwise:
            builder.imul(value, index, 2)
            otherwise()
            builder.imul(value, index, 3)
        builder.imad(address, index, 4, out)
        builder.st_global(address, value)
        out_dev = fast_gpu.allocate(4 * 32)
        run_kernel(fast_gpu, builder, 1, 32, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 32)
        expected = [i * 2 if i >= 16 else i * 3 for i in range(32)]
        assert np.array_equal(values, expected)

    def test_data_dependent_loop_trip_counts(self, fast_gpu):
        # Each thread loops gtid % 7 times: heavy intra-warp divergence.
        builder = KernelBuilder("varloop")
        index, count, limit, address = (builder.reg(), builder.reg(),
                                        builder.reg(), builder.reg())
        out = builder.param("out")
        builder.mov(index, builder.gtid)
        builder.irem(limit, index, 7)
        builder.mov(count, 0)
        loop_counter = builder.reg()
        with builder.for_range(loop_counter, 0, limit):
            builder.iadd(count, count, 10)
        builder.imad(address, index, 4, out)
        builder.st_global(address, count)
        out_dev = fast_gpu.allocate(4 * 64)
        run_kernel(fast_gpu, builder, 2, 32, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 64)
        assert np.array_equal(values, [(i % 7) * 10 for i in range(64)])

    def test_nested_divergence(self, fast_gpu):
        builder = KernelBuilder("nested")
        index, value, address = builder.reg(), builder.reg(), builder.reg()
        outer, inner = builder.pred(), builder.pred()
        out = builder.param("out")
        builder.mov(index, builder.gtid)
        builder.mov(value, 0)
        builder.setp(outer, "ge", index, 8)
        with builder.if_(outer):
            builder.iadd(value, value, 1)
            builder.setp(inner, "ge", index, 16)
            with builder.if_(inner):
                builder.iadd(value, value, 10)
        builder.imad(address, index, 4, out)
        builder.st_global(address, value)
        out_dev = fast_gpu.allocate(4 * 32)
        run_kernel(fast_gpu, builder, 1, 32, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 32)
        expected = [0] * 8 + [1] * 8 + [11] * 16
        assert np.array_equal(values, expected)

    def test_partial_warp_exit(self, fast_gpu):
        # Half the warp exits early; the rest keeps computing.
        builder = KernelBuilder("early_exit")
        index, value, address = builder.reg(), builder.reg(), builder.reg()
        leaves = builder.pred()
        out = builder.param("out")
        builder.mov(index, builder.gtid)
        builder.imad(address, index, 4, out)
        builder.st_global(address, 1)
        builder.setp(leaves, "lt", index, 16)
        builder.exit_()
        # Wait: exit must be guarded; rebuild with a guard instead.
        program_lines = builder._instructions
        program_lines[-1].guard = (leaves, False)
        builder.st_global(address, 2)
        out_dev = fast_gpu.allocate(4 * 32)
        run_kernel(fast_gpu, builder, 1, 32, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 32)
        expected = [1] * 16 + [2] * 16
        assert np.array_equal(values, expected)


class TestSharedMemoryAndBarriers:
    def test_reverse_within_cta_through_shared(self, fast_gpu):
        builder = KernelBuilder("reverse")
        builder.shared_alloc(4 * 64)
        tid, value, address, partner = (builder.reg(), builder.reg(),
                                        builder.reg(), builder.reg())
        out = builder.param("out")
        builder.mov(tid, builder.tid)
        builder.imul(address, tid, 4)
        builder.st_shared(address, tid)
        builder.bar()
        builder.isub(partner, 63, tid)
        builder.imul(address, partner, 4)
        builder.ld_shared(value, address)
        builder.imad(address, builder.gtid, 4, out)
        builder.st_global(address, value)
        out_dev = fast_gpu.allocate(4 * 128)
        run_kernel(fast_gpu, builder, 2, 64, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 128)
        expected = np.concatenate([np.arange(63, -1, -1), np.arange(63, -1, -1)])
        assert np.array_equal(values, expected)

    def test_barrier_with_multiple_warps_orders_accesses(self, fast_gpu):
        result = run_kernel_with_barrier(fast_gpu, block_dim=96)
        assert result


def run_kernel_with_barrier(gpu, block_dim):
    builder = KernelBuilder("barrier_sum")
    builder.shared_alloc(4 * block_dim)
    tid, value, address = builder.reg(), builder.reg(), builder.reg()
    out = builder.param("out")
    builder.mov(tid, builder.tid)
    builder.imul(address, tid, 4)
    builder.st_shared(address, 5)
    builder.bar()
    # Every thread reads a slot written by a (potentially) different warp.
    builder.isub(address, block_dim - 1, tid)
    builder.imul(address, address, 4)
    builder.ld_shared(value, address)
    builder.imad(address, builder.gtid, 4, out)
    builder.st_global(address, value)
    out_dev = gpu.allocate(4 * block_dim)
    gpu.launch(builder.build(), grid_dim=1, block_dim=block_dim,
               params={"out": out_dev})
    values = gpu.global_memory.load_array(out_dev, block_dim)
    return bool((values == 5).all())


class TestLocalMemory:
    def test_local_memory_is_private_per_thread(self, fast_gpu):
        builder = KernelBuilder("local_private")
        value, address = builder.reg(), builder.reg()
        builder.local_alloc(8)
        out = builder.param("out")
        builder.st_local(0, builder.gtid)
        builder.st_local(4, 99)
        builder.ld_local(value, 0)
        builder.imad(address, builder.gtid, 4, out)
        builder.st_global(address, value)
        out_dev = fast_gpu.allocate(4 * 64)
        run_kernel(fast_gpu, builder, 2, 32, {"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 64)
        assert np.array_equal(values, np.arange(64))


class TestLaunchBehaviour:
    def test_missing_parameter_rejected(self, fast_gpu):
        builder = KernelBuilder("needs_param")
        builder.mov(builder.reg(), builder.param("n"))
        with pytest.raises(SimulationError):
            fast_gpu.launch(builder.build(), grid_dim=1, block_dim=32)

    def test_max_cycles_guard(self, fast_gpu):
        builder = KernelBuilder("spin")
        counter = builder.reg()
        done = builder.pred()
        builder.mov(counter, 0)
        with builder.while_loop() as loop:
            builder.setp(done, "ge", counter, 10_000_000)
            loop.break_if(done)
            builder.iadd(counter, counter, 1)
        with pytest.raises(SimulationError):
            fast_gpu.launch(builder.build(), grid_dim=1, block_dim=32,
                            max_cycles=2000)

    def test_more_ctas_than_sms(self, fast_gpu):
        builder = KernelBuilder("many_ctas")
        address = builder.reg()
        out = builder.param("out")
        builder.imad(address, builder.gtid, 4, out)
        builder.st_global(address, builder.ctaid)
        out_dev = fast_gpu.allocate(4 * 64 * 40)
        result = fast_gpu.launch(builder.build(), grid_dim=40, block_dim=64,
                                 params={"out": out_dev})
        values = fast_gpu.global_memory.load_array(out_dev, 64 * 40)
        expected = np.repeat(np.arange(40), 64)
        assert np.array_equal(values, expected)
        assert result.cycles > 0
        total_ctas = sum(sm.stats["ctas_launched"] for sm in fast_gpu.sms)
        assert total_ctas == 40

    def test_result_metadata(self, fast_gpu):
        builder = KernelBuilder("tiny")
        builder.nop()
        result = fast_gpu.launch(builder.build(), grid_dim=1, block_dim=32)
        assert result.kernel_name == "tiny"
        assert result.instructions >= 2
        assert result.cycles >= 1
        assert 0 < result.ipc
        assert result.end_cycle >= result.start_cycle

    def test_sequential_launches_accumulate_cycles(self, fast_gpu):
        builder = KernelBuilder("tiny")
        builder.nop()
        program = builder.build()
        first = fast_gpu.launch(program, grid_dim=1, block_dim=32)
        second = fast_gpu.launch(program, grid_dim=1, block_dim=32)
        assert second.start_cycle > first.end_cycle

    def test_collect_stats_includes_memory_and_sm(self, fast_gpu):
        builder = KernelBuilder("tiny")
        builder.nop()
        fast_gpu.launch(builder.build(), grid_dim=1, block_dim=32)
        stats = fast_gpu.collect_stats().as_dict()
        assert any("instructions_issued" in key for key in stats)
        assert any(key.endswith("cycles") for key in stats)
