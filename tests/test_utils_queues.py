"""Unit tests for the bounded FIFO queue."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.queues import BoundedQueue


class TestBoundedQueueBasics:
    def test_starts_empty(self):
        queue = BoundedQueue(4)
        assert queue.empty()
        assert not queue.full()
        assert len(queue) == 0
        assert not queue

    def test_push_pop_fifo_order(self):
        queue = BoundedQueue(4)
        for value in (1, 2, 3):
            queue.push(value)
        assert [queue.pop(), queue.pop(), queue.pop()] == [1, 2, 3]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(-1)

    def test_full_when_capacity_reached(self):
        queue = BoundedQueue(2)
        queue.push("a")
        queue.push("b")
        assert queue.full()

    def test_push_into_full_queue_raises(self):
        queue = BoundedQueue(1)
        queue.push("a")
        with pytest.raises(RuntimeError):
            queue.push("b")

    def test_try_push_reports_failure_and_counts_stall(self):
        queue = BoundedQueue(1)
        assert queue.try_push("a")
        assert not queue.try_push("b")
        assert queue.full_stall_cycles == 1

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            BoundedQueue(1).pop()

    def test_try_pop_returns_none_when_empty(self):
        assert BoundedQueue(1).try_pop() is None

    def test_peek_does_not_remove(self):
        queue = BoundedQueue(2)
        queue.push(10)
        assert queue.peek() == 10
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert BoundedQueue(2).peek() is None

    def test_unbounded_queue_never_full(self):
        queue = BoundedQueue(0)
        for value in range(1000):
            queue.push(value)
        assert not queue.full()
        assert queue.unbounded
        assert queue.free_slots() > 1000

    def test_free_slots(self):
        queue = BoundedQueue(3)
        queue.push(1)
        assert queue.free_slots() == 2

    def test_remove_specific_item(self):
        queue = BoundedQueue(4)
        for value in (1, 2, 3):
            queue.push(value)
        queue.remove(2)
        assert list(queue) == [1, 3]

    def test_clear(self):
        queue = BoundedQueue(4)
        queue.push(1)
        queue.clear()
        assert queue.empty()

    def test_counters_track_traffic(self):
        queue = BoundedQueue(4)
        queue.push(1)
        queue.push(2)
        queue.pop()
        assert queue.total_enqueued == 2
        assert queue.total_dequeued == 1

    def test_iteration_preserves_order(self):
        queue = BoundedQueue(4)
        for value in (5, 6, 7):
            queue.push(value)
        assert list(queue) == [5, 6, 7]


class TestBoundedQueueProperties:
    @given(st.lists(st.integers(), max_size=50))
    def test_fifo_order_preserved(self, values):
        queue = BoundedQueue(0)
        for value in values:
            queue.push(value)
        drained = [queue.pop() for _ in range(len(queue))]
        assert drained == values

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                    max_size=100), st.integers(min_value=1, max_value=8))
    def test_length_never_exceeds_capacity(self, operations, capacity):
        queue = BoundedQueue(capacity)
        for operation in operations:
            if operation == 0:
                queue.try_push(object())
            else:
                queue.try_pop()
            assert 0 <= len(queue) <= capacity

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=16))
    def test_free_slots_plus_length_equals_capacity(self, capacity, pushes):
        queue = BoundedQueue(capacity)
        for _ in range(pushes):
            queue.try_push(1)
        assert queue.free_slots() + len(queue) == capacity
