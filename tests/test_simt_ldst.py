"""Unit tests for the LD/ST unit: coalescing, L1 behaviour, completion."""

import numpy as np

from repro.core.stages import Event
from repro.core.tracker import LatencyTracker
from repro.isa import KernelBuilder
from repro.memory.subsystem import MemorySystem
from repro.simt.ldst import LoadStoreUnit
from tests.conftest import make_fast_config


def build_harness(l1_enabled=True, cache_global=True):
    """A LoadStoreUnit wired to a real (small) memory system."""
    import dataclasses

    config = make_fast_config()
    l1 = dataclasses.replace(config.core.l1, enabled=l1_enabled,
                             cache_global=cache_global)
    core = dataclasses.replace(config.core, l1=l1)
    config = config.replace(core=core)
    tracker = LatencyTracker()
    memory_system = MemorySystem(
        num_sms=config.num_sms,
        mapping=config.mapping,
        icnt_config=config.interconnect,
        partition_config=config.partition,
        tracker=tracker,
    )
    unit = LoadStoreUnit(0, config.core, memory_system, tracker)
    return unit, memory_system, tracker, config


def make_load_instruction():
    builder = KernelBuilder("ld")
    dst = builder.reg()
    addr = builder.reg()
    builder.ld_global(dst, addr)
    return builder.build()[0]


def make_store_instruction():
    builder = KernelBuilder("st")
    addr = builder.reg()
    builder.st_global(addr, addr)
    return builder.build()[0]


class FakeWarp:
    """Minimal stand-in for a Warp (only the fields the LD/ST unit touches)."""

    def __init__(self, warp_id=0):
        self.warp_id = warp_id
        self.done = False
        self.launch_id = 0


def lane_addresses(base, count=32, stride=4):
    return np.array([base + lane * stride for lane in range(32)],
                    dtype=np.float64), np.array([lane < count for lane in range(32)])


def run_cycles(unit, memory_system, cycles, start=0):
    for cycle in range(start, start + cycles):
        memory_system.cycle(cycle)
        unit.process_writebacks(cycle)
        unit.cycle(cycle)
    return start + cycles


class TestCoalescing:
    def test_consecutive_words_coalesce_to_one_line(self):
        unit, _, _, _ = build_harness()
        addresses, mask = lane_addresses(0x1000, count=32, stride=4)
        token = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        assert token.expected == 1

    def test_strided_accesses_need_multiple_lines(self):
        unit, _, _, _ = build_harness()
        addresses, mask = lane_addresses(0x1000, count=32, stride=128)
        token = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        assert token.expected == 32

    def test_masked_off_load_completes_quickly(self):
        unit, memory_system, _, _ = build_harness()
        addresses, _ = lane_addresses(0x1000)
        mask = np.zeros(32, dtype=bool)
        completed = []
        unit.on_load_complete = lambda token, cycle: completed.append(cycle)
        token = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        assert token.expected == 1
        run_cycles(unit, memory_system, 5)
        assert completed

    def test_capacity_limit(self):
        unit, _, _, config = build_harness()
        addresses, mask = lane_addresses(0x1000)
        for _ in range(config.core.ldst_queue_size):
            assert unit.can_accept()
            unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        assert not unit.can_accept()


class TestL1Behaviour:
    def test_miss_then_hit(self):
        unit, memory_system, tracker, _ = build_harness()
        addresses, mask = lane_addresses(0x2000, count=32, stride=4)
        completed = []
        unit.on_load_complete = lambda token, cycle: completed.append((token, cycle))
        first = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        now = run_cycles(unit, memory_system, 300)
        assert first.finished and not first.all_l1_hits
        second = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, now)
        run_cycles(unit, memory_system, 60, start=now)
        assert second.finished and second.all_l1_hits
        miss_latency = completed[0][1] - first.issue_cycle
        hit_latency = completed[1][1] - second.issue_cycle
        assert hit_latency < miss_latency

    def test_l1_disabled_never_hits(self):
        unit, memory_system, _, _ = build_harness(l1_enabled=False)
        addresses, mask = lane_addresses(0x2000, count=32, stride=4)
        first = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        now = run_cycles(unit, memory_system, 300)
        second = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, now)
        run_cycles(unit, memory_system, 300, start=now)
        assert first.finished and second.finished
        assert not second.all_l1_hits

    def test_global_bypass_still_caches_local(self):
        unit, memory_system, _, _ = build_harness(cache_global=False)
        builder = KernelBuilder("ldl")
        dst, addr = builder.reg(), builder.reg()
        builder.ld_local(dst, addr)
        builder.local_alloc(4)
        local_load = builder.build()[0]
        addresses, mask = lane_addresses(0x2000, count=32, stride=4)
        unit.issue(FakeWarp(), local_load, addresses, mask, 0)
        now = run_cycles(unit, memory_system, 300)
        second = unit.issue(FakeWarp(), local_load, addresses, mask, now)
        run_cycles(unit, memory_system, 60, start=now)
        assert second.all_l1_hits
        # A global load to the same line must not have been cached.
        third = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask,
                           now + 60)
        run_cycles(unit, memory_system, 300, start=now + 60)
        assert third.finished and not third.all_l1_hits

    def test_mshr_merges_loads_to_same_line(self):
        unit, memory_system, tracker, _ = build_harness()
        addresses, mask = lane_addresses(0x3000, count=32, stride=4)
        first = unit.issue(FakeWarp(0), make_load_instruction(), addresses, mask, 0)
        second = unit.issue(FakeWarp(1), make_load_instruction(), addresses, mask, 0)
        run_cycles(unit, memory_system, 300)
        assert first.finished and second.finished
        assert unit.stats["mshr_merges"] >= 1
        # Only one request went to the memory system.
        assert memory_system.stats["requests_injected"] == 1

    def test_store_invalidates_l1_line(self):
        unit, memory_system, _, _ = build_harness()
        addresses, mask = lane_addresses(0x4000, count=32, stride=4)
        load = unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        now = run_cycles(unit, memory_system, 300)
        assert load.finished
        assert unit.l1.probe(0x4000)
        unit.issue(FakeWarp(), make_store_instruction(), addresses, mask, now)
        run_cycles(unit, memory_system, 20, start=now)
        assert not unit.l1.probe(0x4000)


def make_shared_load(shared_bytes=4096):
    builder = KernelBuilder("lds")
    dst, addr = builder.reg(), builder.reg()
    builder.shared_alloc(shared_bytes)
    builder.ld_shared(dst, addr)
    return builder.build()[0]


class TestSharedMemoryTiming:
    def test_conflict_free_access(self):
        unit, memory_system, _, config = build_harness()
        instruction = make_shared_load()
        addresses = np.arange(32, dtype=np.float64) * 4
        mask = np.ones(32, dtype=bool)
        completed = []
        unit.on_load_complete = lambda token, cycle: completed.append(cycle)
        unit.issue(FakeWarp(), instruction, addresses, mask, 0)
        run_cycles(unit, memory_system, 40)
        assert completed
        assert completed[0] == config.core.shared_latency
        assert unit.stats["shared_bank_conflict_cycles"] == 0

    def test_bank_conflicts_add_latency(self):
        unit, memory_system, _, config = build_harness()
        instruction = make_shared_load(16 * 1024)
        # All 32 lanes hit the same bank (stride of 32 words).
        addresses = np.arange(32, dtype=np.float64) * 4 * config.core.shared_banks
        mask = np.ones(32, dtype=bool)
        completed = []
        unit.on_load_complete = lambda token, cycle: completed.append(cycle)
        unit.issue(FakeWarp(), instruction, addresses, mask, 0)
        run_cycles(unit, memory_system, 80)
        assert completed
        assert completed[0] == config.core.shared_latency + 31
        assert unit.stats["shared_bank_conflict_cycles"] == 31


class TestEventRecording:
    def test_miss_records_full_event_sequence(self):
        unit, memory_system, tracker, _ = build_harness()
        addresses, mask = lane_addresses(0x5000, count=32, stride=4)
        unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        run_cycles(unit, memory_system, 300)
        records = tracker.read_requests()
        assert len(records) == 1
        timestamps = records[0].timestamps
        for event in (Event.ISSUE, Event.L1_ACCESS, Event.ICNT_INJECT,
                      Event.ROP_ARRIVE, Event.L2Q_ARRIVE, Event.COMPLETE):
            assert event in timestamps
        ordered = [timestamps[event] for event in timestamps]
        assert ordered == sorted(ordered)

    def test_hit_records_short_sequence(self):
        unit, memory_system, tracker, _ = build_harness()
        addresses, mask = lane_addresses(0x6000, count=32, stride=4)
        unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, 0)
        now = run_cycles(unit, memory_system, 300)
        unit.issue(FakeWarp(), make_load_instruction(), addresses, mask, now)
        run_cycles(unit, memory_system, 60, start=now)
        hit_record = tracker.read_requests()[-1]
        assert Event.ICNT_INJECT not in hit_record.timestamps
        assert hit_record.latency < 60

    def test_load_records_written(self):
        unit, memory_system, tracker, _ = build_harness()
        addresses, mask = lane_addresses(0x7000, count=32, stride=4)
        unit.issue(FakeWarp(3), make_load_instruction(), addresses, mask, 0)
        run_cycles(unit, memory_system, 300)
        assert len(tracker.loads) == 1
        record = tracker.loads[0]
        assert record.warp_id == 3
        assert record.num_requests == 1
        assert record.latency > 0
