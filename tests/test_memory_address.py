"""Unit and property tests for address decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import AddressMapping
from repro.utils.errors import ConfigurationError

addresses = st.integers(min_value=0, max_value=1 << 26)


class TestAddressMappingBasics:
    def test_partition_interleaving(self):
        mapping = AddressMapping(num_partitions=4, partition_chunk=256)
        assert mapping.partition_of(0) == 0
        assert mapping.partition_of(256) == 1
        assert mapping.partition_of(512) == 2
        assert mapping.partition_of(768) == 3
        assert mapping.partition_of(1024) == 0

    def test_partition_local_compacts_chunks(self):
        mapping = AddressMapping(num_partitions=4, partition_chunk=256)
        # The second chunk owned by partition 0 starts at global 1024 and
        # must directly follow the first chunk in partition-local space.
        assert mapping.partition_local(0) == 0
        assert mapping.partition_local(1024) == 256
        assert mapping.partition_local(1024 + 17) == 256 + 17

    def test_bank_and_row_decoding(self):
        mapping = AddressMapping(num_partitions=1, partition_chunk=256,
                                 row_bytes=1024, num_banks=4)
        assert mapping.bank_of(0) == 0
        assert mapping.bank_of(1024) == 1
        assert mapping.bank_of(4096) == 0
        assert mapping.row_of(0) == 0
        assert mapping.row_of(4096) == 1

    def test_decode_tuple(self):
        mapping = AddressMapping(num_partitions=2)
        partition, bank, row = mapping.decode(12345)
        assert partition == mapping.partition_of(12345)
        assert bank == mapping.bank_of(12345)
        assert row == mapping.row_of(12345)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AddressMapping(num_partitions=0)
        with pytest.raises(ConfigurationError):
            AddressMapping(partition_chunk=300)
        with pytest.raises(ConfigurationError):
            AddressMapping(row_bytes=1000)
        with pytest.raises(ConfigurationError):
            AddressMapping(num_banks=0)


class TestAddressMappingProperties:
    @given(addresses)
    def test_partition_in_range(self, address):
        mapping = AddressMapping(num_partitions=4)
        assert 0 <= mapping.partition_of(address) < 4

    @given(addresses)
    def test_bank_in_range(self, address):
        mapping = AddressMapping(num_partitions=4, num_banks=8)
        assert 0 <= mapping.bank_of(address) < 8

    @given(addresses)
    def test_partition_local_preserves_chunk_offset(self, address):
        mapping = AddressMapping(num_partitions=4, partition_chunk=256)
        assert (mapping.partition_local(address) % 256) == (address % 256)

    @given(addresses, addresses)
    def test_partition_local_injective_within_partition(self, a, b):
        mapping = AddressMapping(num_partitions=4, partition_chunk=256)
        if a != b and mapping.partition_of(a) == mapping.partition_of(b):
            assert mapping.partition_local(a) != mapping.partition_local(b)

    @given(st.integers(min_value=0, max_value=1 << 16))
    def test_sequential_chunks_cover_all_partitions(self, chunk_index):
        mapping = AddressMapping(num_partitions=4, partition_chunk=256)
        partitions = {
            mapping.partition_of((chunk_index + offset) * 256)
            for offset in range(4)
        }
        assert partitions == {0, 1, 2, 3}
