"""Unit tests for the statistics counter collection."""

from repro.utils.stats import StatCounters


class TestStatCounters:
    def test_default_value_is_zero(self):
        stats = StatCounters()
        assert stats["missing"] == 0
        assert stats.get("missing", 5) == 5

    def test_add_creates_and_increments(self):
        stats = StatCounters()
        stats.add("hits")
        stats.add("hits", 2)
        assert stats["hits"] == 3

    def test_set_overwrites(self):
        stats = StatCounters()
        stats.add("value", 10)
        stats.set("value", 3)
        assert stats["value"] == 3

    def test_contains(self):
        stats = StatCounters()
        stats.add("present")
        assert "present" in stats
        assert "absent" not in stats

    def test_as_dict_applies_prefix(self):
        stats = StatCounters(prefix="sm0")
        stats.add("hits", 4)
        assert stats.as_dict() == {"sm0.hits": 4}

    def test_as_dict_without_prefix(self):
        stats = StatCounters()
        stats.add("hits", 4)
        assert stats.as_dict() == {"hits": 4}

    def test_merge_accumulates(self):
        first = StatCounters()
        first.add("hits", 1)
        second = StatCounters()
        second.add("hits", 2)
        second.add("misses", 3)
        first.merge(second.as_dict())
        assert first["hits"] == 3
        assert first["misses"] == 3

    def test_iteration_is_sorted(self):
        stats = StatCounters()
        stats.add("zebra")
        stats.add("alpha")
        assert [name for name, _ in stats] == ["alpha", "zebra"]

    def test_report_contains_all_counters(self):
        stats = StatCounters(prefix="core")
        stats.add("cycles", 100)
        stats.add("ipc", 0.5)
        report = stats.report()
        assert "core.cycles = 100" in report
        assert "core.ipc = 0.5" in report
